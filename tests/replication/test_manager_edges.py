"""Edge branches of the replication manager: races, stragglers, bypasses."""

from types import SimpleNamespace

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.replication import (
    REPLICATION_ENV_VAR,
    ReplicaAccept,
    ReplicationPolicy,
)
from repro.storm.heapfile import RecordId
from repro.topology.builders import line


def deploy(policy=None, node_count=3):
    config = BestPeerConfig(
        max_direct_peers=4,
        strategy="maxcount",
        replication=policy or ReplicationPolicy(rf=2),
    )
    return build_network(node_count, config=config, topology=line(node_count))


class TestStragglerFrames:
    def test_accept_for_unknown_token_is_ignored(self):
        net = deploy()
        manager = net.nodes[1].replication
        stale = ReplicaAccept(token=424242, holder=net.base.bpid, accepted=True)
        manager._on_accept(SimpleNamespace(payload=stale, src=net.base.host.address))
        assert manager.statistics()["replicas_pushed"] == 0

    def test_expired_token_cannot_fire_twice(self):
        net = deploy()
        manager = net.nodes[1].replication
        manager._expire_offer(999)  # never offered; must be a no-op
        assert net.nodes[1].request_timeouts.get("replica", 0) == 0


class TestBypassBranches:
    def test_cached_answers_bypassed(self, monkeypatch):
        net = deploy(ReplicationPolicy(rf=2, cache_capacity=4))
        manager = net.base.replication
        manager.cache_answers("kw", ("answer",))
        monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
        assert manager.cached_answers("kw") is None
        monkeypatch.setenv(REPLICATION_ENV_VAR, "on")
        assert manager.cached_answers("kw") == ("answer",)

    def test_delete_and_reshare_bypassed(self, monkeypatch):
        net = deploy()
        owner = net.nodes[1]
        rid = owner.share(["kw"], b"content")
        net.sim.run()
        monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
        owner.unshare(rid)  # on_delete returns before any invalidate
        net.sim.run()
        assert owner.replication.statistics()["invalidations"] == 0

    def test_note_query_hits_inactive_without_hot_rf(self):
        net = deploy(ReplicationPolicy(rf=2))
        owner = net.nodes[1]
        rid = owner.share(["kw"], b"content")
        net.sim.run()
        owner.replication.note_query_hits((rid,))
        owner.replication.note_query_hits((rid,))
        assert owner.replication.hot_records() == frozenset()


class TestReshareEdges:
    def test_reshare_of_pre_replication_record_places_fresh(self, monkeypatch):
        net = deploy()
        owner = net.nodes[1]
        monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
        rid = owner.share(["kw-old"], b"pre-replication")  # never versioned
        net.sim.run()
        monkeypatch.setenv(REPLICATION_ENV_VAR, "on")
        new_rid = owner.reshare(rid, ["kw-old"], b"now-replicated")
        net.sim.run()
        # Treated as a fresh share: placed, no invalidate sent.
        assert len(owner.replication.holders_of(new_rid)) == 1
        assert owner.replication.statistics()["invalidations"] == 0

    def test_reshare_with_no_holders_places_the_replacement(self):
        net = deploy(node_count=2)
        base, owner = net.nodes
        base.replication.policy = ReplicationPolicy()  # declines offers
        rid = owner.share(["kw"], b"v1")
        net.sim.run()
        assert owner.replication.holders_of(rid) == {}
        base.replication.policy = ReplicationPolicy(rf=2)  # accepts now
        new_rid = owner.reshare(rid, ["kw"], b"v2")
        net.sim.run()
        assert len(owner.replication.holders_of(new_rid)) == 1
        assert base.replication.replicas_held == 1


class TestFetchFallback:
    def test_replica_payload_rejects_primary_rids(self):
        net = deploy()
        owner = net.nodes[1]
        owner.share(["kw"], b"content")
        net.sim.run()
        holder = next(
            node for node in net.nodes if node.replication.replicas_held == 1
        )
        assert holder.replication.replica_payload(RecordId(0, 0)) is None

    def test_replica_payload_without_a_store(self):
        net = deploy()
        assert (
            net.nodes[1].replication.replica_payload(
                RecordId(0x8000_0000, 0)
            )
            is None
        )


class TestStaleAddressReoffer:
    def test_offer_follows_candidate_to_its_new_address(self):
        # The candidate reconnects under a fresh IP before the share;
        # the owner's tables still hold the old one.  The timed-out
        # offer must chase the LIGLO-resolved address and land.
        net = deploy()
        base, owner, _ = net.nodes
        old_address = base.host.address
        base.leave()
        base.rejoin()
        net.sim.run()
        assert base.host.address != old_address
        assert owner.peers.get(base.bpid).address == old_address
        rid = owner.share(["kw"], b"content")
        net.sim.run()
        assert owner.request_timeouts["replica"] == 1
        assert owner.replication.holders_of(rid) == {
            base.bpid: base.host.address
        }
        assert base.replication.replicas_held == 1

    def test_no_reoffer_when_the_candidate_is_really_gone(self):
        net = deploy()
        base, owner, _ = net.nodes
        base.leave()
        rid = owner.share(["kw"], b"content")
        net.sim.run()
        # Resolve reports the candidate offline: rollback is final.
        assert owner.replication.holders_of(rid) == {}
        assert owner.request_timeouts["replica"] == 1

    def test_record_deleted_while_resolve_in_flight(self):
        net = deploy()
        base, owner, _ = net.nodes
        old_address = base.host.address
        base.leave()
        base.rejoin()
        net.sim.run()
        assert base.host.address != old_address
        rid = owner.share(["kw"], b"content")
        fetch_timeout = owner.config.fetch_timeout
        net.sim.schedule(fetch_timeout + 0.01, owner.unshare, rid)
        net.sim.run()
        # The re-offer found nothing live to ship; nobody holds a copy.
        assert base.replication.replicas_held == 0
        assert owner.replication.holders_of(rid) == {}
