"""Replication policy validation and the per-call env kill switch."""

import pytest

from repro.errors import ReplicationError
from repro.replication.policy import (
    REPLICATION_ENV_VAR,
    ReplicationPolicy,
    replication_bypassed,
)


class TestPolicyValidation:
    def test_defaults_reproduce_the_paper(self):
        policy = ReplicationPolicy()
        assert policy.rf == 1
        assert policy.hot_rf is None
        assert not policy.replicates
        assert not policy.caches
        assert not policy.active

    def test_rf_two_replicates(self):
        policy = ReplicationPolicy(rf=2)
        assert policy.replicates
        assert policy.active
        assert not policy.caches

    def test_hot_rf_alone_replicates(self):
        policy = ReplicationPolicy(rf=1, hot_rf=3)
        assert policy.replicates
        assert policy.active

    def test_cache_alone_activates(self):
        policy = ReplicationPolicy(cache_capacity=4)
        assert policy.caches
        assert policy.active
        assert not policy.replicates

    def test_rf_below_one_rejected(self):
        with pytest.raises(ReplicationError, match="rf must be >= 1"):
            ReplicationPolicy(rf=0)

    def test_hot_rf_below_rf_rejected(self):
        with pytest.raises(ReplicationError, match="hot_rf must be >= rf"):
            ReplicationPolicy(rf=3, hot_rf=2)

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ReplicationError, match="hot_threshold"):
            ReplicationPolicy(hot_threshold=0.0)

    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ReplicationError, match="ewma_alpha"):
            ReplicationPolicy(ewma_alpha=0.0)
        with pytest.raises(ReplicationError, match="ewma_alpha"):
            ReplicationPolicy(ewma_alpha=1.5)

    def test_negative_cache_capacity_rejected(self):
        with pytest.raises(ReplicationError, match="cache_capacity"):
            ReplicationPolicy(cache_capacity=-1)

    def test_policy_is_frozen(self):
        policy = ReplicationPolicy(rf=2)
        with pytest.raises(AttributeError):
            policy.rf = 3


class TestEnvBypass:
    def test_unset_means_enabled(self, monkeypatch):
        monkeypatch.delenv(REPLICATION_ENV_VAR, raising=False)
        assert not replication_bypassed()

    def test_on_means_enabled(self, monkeypatch):
        monkeypatch.setenv(REPLICATION_ENV_VAR, "on")
        assert not replication_bypassed()

    def test_off_means_bypassed(self, monkeypatch):
        monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
        assert replication_bypassed()

    def test_case_and_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv(REPLICATION_ENV_VAR, "  OFF ")
        assert replication_bypassed()

    def test_garbage_rejected_loudly(self, monkeypatch):
        monkeypatch.setenv(REPLICATION_ENV_VAR, "maybe")
        with pytest.raises(ReplicationError, match="REPRO_REPLICATION"):
            replication_bypassed()
