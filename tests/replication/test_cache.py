"""Initiator result cache: bounded LRU with invalidation coherence."""

import pytest

from repro.errors import ReplicationError
from repro.replication.cache import ResultCache


def answers(tag: str) -> tuple:
    # The cache never inspects its values; any opaque tuple works.
    return (f"answer-{tag}",)


class TestResultCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ReplicationError, match="capacity"):
            ResultCache(0)

    def test_miss_then_hit(self):
        cache = ResultCache(2)
        assert cache.get("music") is None
        cache.put("music", answers("music"))
        assert cache.get("music") == answers("music")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_evicts_the_coldest_entry(self):
        cache = ResultCache(2)
        cache.put("a", answers("a"))
        cache.put("b", answers("b"))
        assert cache.get("a") is not None  # refresh "a"; "b" is now LRU
        cache.put("c", answers("c"))
        assert cache.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_put_replaces_in_place_without_eviction(self):
        cache = ResultCache(1)
        cache.put("a", answers("old"))
        cache.put("a", answers("new"))
        assert cache.evictions == 0
        assert cache.get("a") == answers("new")

    def test_invalidate_drops_matching_entries_only(self):
        cache = ResultCache(4)
        cache.put("a", answers("a"))
        cache.put("b", answers("b"))
        dropped = cache.invalidate_keywords(("a", "zzz"))
        assert dropped == 1
        assert cache.invalidations == 1
        assert "a" not in cache
        assert "b" in cache

    def test_invalidated_entry_misses_afterwards(self):
        cache = ResultCache(2)
        cache.put("a", answers("a"))
        cache.invalidate_keywords(("a",))
        assert cache.get("a") is None

    def test_clear_and_len(self):
        cache = ResultCache(3)
        cache.put("a", answers("a"))
        cache.put("b", answers("b"))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache
