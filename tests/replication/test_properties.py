"""Hypothesis properties of the replication subsystem.

Two invariants the whole design hangs on:

* **RF-invariance**: on a fault-free network, the *deduped* answer
  content of any query is identical under rf 1, 2, and 3 — replication
  adds copies, never answers.
* **No resurrection**: whatever order shares, reshares, queries, and
  the final delete arrive in, a deleted record's content never appears
  in any later answer set, and no holder retains a copy of it.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.replication import ReplicationPolicy
from repro.topology.builders import random_graph

KEYWORDS = ("alpha", "beta", "gamma")

#: (node index 1..4, keyword index, payload byte) per shared object.
OBJECTS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=len(KEYWORDS) - 1),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=5,
)

SLOW_NETWORK = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _network(rf: int, node_count: int = 5):
    config = BestPeerConfig(
        max_direct_peers=8,
        strategy="maxcount",
        replication=ReplicationPolicy(rf=rf),
    )
    return build_network(
        node_count,
        config=config,
        topology=random_graph(node_count, degree=3, seed=7),
    )


def _answer_contents(handle) -> frozenset:
    return frozenset(
        (item.keywords, item.size, item.payload)
        for answer in handle.answers
        for item in answer.items
    )


@SLOW_NETWORK
@given(objects=OBJECTS)
def test_deduped_answers_invariant_under_rf(objects):
    per_rf: dict[int, list] = {}
    for rf in (1, 2, 3):
        net = _network(rf)
        for node_index, keyword_index, payload_byte in objects:
            net.nodes[node_index].share(
                [KEYWORDS[keyword_index]], bytes([payload_byte]) * 16
            )
        net.sim.run()
        outcomes = []
        for keyword in KEYWORDS:
            handle = net.base.issue_query(keyword)
            net.sim.run()
            net.base.finish_query(handle)
            outcomes.append(
                (keyword, _answer_contents(handle), handle.distinct_answer_count)
            )
        per_rf[rf] = outcomes
    assert per_rf[2] == per_rf[1]
    assert per_rf[3] == per_rf[1]


#: Operation stream applied to one record before its final delete:
#: True = reshare with fresh content, False = query the keyword.
OPS = st.lists(st.booleans(), min_size=0, max_size=4)


@SLOW_NETWORK
@given(ops=OPS)
def test_deleted_record_never_resurrects(ops):
    net = _network(rf=2, node_count=5)
    owner = net.nodes[2]
    rid = owner.share(["alpha"], b"version-0")
    net.sim.run()
    version = 0
    for reshare in ops:
        if reshare:
            version += 1
            rid = owner.reshare(rid, ["alpha"], f"version-{version}".encode())
        else:
            handle = net.base.issue_query("alpha")
        net.sim.run()
    deleted_payloads = {f"version-{v}".encode() for v in range(version + 1)}
    owner.unshare(rid)
    net.sim.run()
    # No holder anywhere retains a copy, whatever the interleaving was.
    assert sum(node.replication.replicas_held for node in net.nodes) == 0
    handle = net.base.issue_query("alpha")
    net.sim.run()
    net.base.finish_query(handle)
    assert handle.distinct_answer_count == 0
    surviving = {
        item.payload for answer in handle.answers for item in answer.items
    }
    assert surviving.isdisjoint(deleted_payloads)
