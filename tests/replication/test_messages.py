"""Replication frames: compact round-trips on both wire planes.

The golden-vector batteries in ``tests/net`` pin the exact bytes; these
tests pin the registration contract (ids, planes) and value round-trips
including the edge shapes the protocol relies on (empty keyword lists,
absent repair rid, multi-record pushes).
"""

from repro.ids import BPID
from repro.net import codec as wire
from repro.net import datacodec as data
from repro.net.address import IPAddress
from repro.replication.messages import (
    ReplicaAccept,
    ReplicaInvalidate,
    ReplicaOffer,
    ReplicaPush,
    ReplicaRecord,
)
from repro.storm.heapfile import RecordId

OWNER = BPID("liglo-main", 3)
HOLDER = BPID("liglo-main", 8)


class TestRegistrations:
    def test_control_frames_use_the_010b_block(self):
        assert wire.lookup(ReplicaOffer).type_id == 0x010B
        assert wire.lookup(ReplicaAccept).type_id == 0x010C
        assert wire.lookup(ReplicaInvalidate).type_id == 0x010D

    def test_push_rides_the_data_plane(self):
        assert data.lookup(ReplicaPush).type_id == 0x1009
        assert wire.lookup(ReplicaPush) is None


class TestSamples:
    """Every spec's golden-vector sample survives its own plane."""

    def test_control_samples_roundtrip(self):
        for frame in (ReplicaOffer, ReplicaAccept, ReplicaInvalidate):
            sample = wire.lookup(frame).sample()
            assert wire.decode_message(wire.encode_message(sample)) == sample

    def test_push_sample_roundtrips(self):
        sample = data.lookup(ReplicaPush).sample()
        assert data.decode_message(data.encode_message(sample)) == sample
        assert sample.records and sample.records[0].payload


class TestRoundTrips:
    def roundtrip(self, message):
        return wire.decode_message(wire.encode_message(message))

    def test_offer(self):
        offer = ReplicaOffer(token=7, owner=OWNER, record_count=3, total_bytes=4096)
        assert self.roundtrip(offer) == offer

    def test_accept_and_decline(self):
        accept = ReplicaAccept(token=7, holder=HOLDER, accepted=True)
        assert self.roundtrip(accept) == accept
        decline = ReplicaAccept(
            token=8, holder=HOLDER, accepted=False, reason="replication disabled"
        )
        assert self.roundtrip(decline) == decline

    def test_invalidate_delete_has_no_repair(self):
        invalidate = ReplicaInvalidate(
            owner=OWNER,
            rid=RecordId(2, 5),
            version=3,
            delete=True,
            keywords=("music",),
        )
        decoded = self.roundtrip(invalidate)
        assert decoded == invalidate
        assert decoded.repair_rid is None
        assert decoded.repair_keywords == ()

    def test_invalidate_reshare_names_the_replacement(self):
        invalidate = ReplicaInvalidate(
            owner=OWNER,
            rid=RecordId(2, 5),
            version=4,
            delete=False,
            keywords=("music", "mp3"),
            repair_rid=RecordId(2, 6),
            repair_keywords=("music", "flac"),
        )
        assert self.roundtrip(invalidate) == invalidate

    def test_push_round_trips_versioned_records(self):
        push = ReplicaPush(
            token=9,
            owner=OWNER,
            owner_address=IPAddress("10.0.3.7"),
            records=(
                ReplicaRecord(
                    rid=RecordId(0, 0), version=1, keywords=("a",), payload=b"x" * 100
                ),
                ReplicaRecord(
                    rid=RecordId(4, 2), version=7, keywords=(), payload=b""
                ),
            ),
        )
        decoded = data.decode_message(data.encode_message(push))
        assert decoded == push
        assert decoded.record_count == 2
        assert decoded.total_bytes == 100
