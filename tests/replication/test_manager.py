"""End-to-end replication battery: placement, failover, invalidation.

Every scenario runs a real simulated BestPeer network (LIGLO join,
flooded search agents, the wire codecs) — the replication protocol is
exercised through exactly the paths a deployment would use.
"""

from types import SimpleNamespace

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.ids import BPID
from repro.net.address import IPAddress
from repro.replication import (
    REPLICATION_ENV_VAR,
    ReplicaPush,
    ReplicaRecord,
    ReplicationPolicy,
    is_replica_rid,
    replica_store_rid,
)
from repro.topology.builders import line, random_graph


def deploy(node_count, policy, seed=1, **overrides):
    config = BestPeerConfig(
        max_direct_peers=8,
        strategy="maxcount",
        replication=policy,
        **overrides,
    )
    if node_count <= 3:
        topology = line(node_count)
    else:
        topology = random_graph(node_count, degree=3, seed=seed)
    return build_network(node_count, config=config, topology=topology)


def by_bpid(deployment):
    return {node.bpid: node for node in deployment.nodes}


class TestPlacement:
    def test_share_places_rf_minus_one_copies(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        rid = owner.share(["kw-place"], b"payload-place")
        net.sim.run()
        holders = owner.replication.holders_of(rid)
        assert len(holders) == 1
        holder = by_bpid(net)[next(iter(holders))]
        assert holder.replication.replicas_held == 1
        assert holder.replication.held_copies() == {(owner.bpid, rid): 1}
        assert owner.replication.statistics()["replica_offers"] == 1
        assert owner.replication.statistics()["replicas_pushed"] == 1

    def test_rf_three_places_two_copies(self):
        net = deploy(8, ReplicationPolicy(rf=3))
        owner = net.nodes[3]
        rid = owner.share(["kw-three"], b"three-copies")
        net.sim.run()
        assert len(owner.replication.holders_of(rid)) == 2
        held = sum(node.replication.replicas_held for node in net.nodes)
        assert held == 2

    def test_rf_one_is_inert(self):
        net = deploy(6, ReplicationPolicy())
        owner = net.nodes[2]
        rid = owner.share(["kw-inert"], b"single-copy")
        net.sim.run()
        stats = owner.replication.statistics()
        assert stats["replica_offers"] == 0
        assert stats["replicas_pushed"] == 0
        assert owner.replication.holders_of(rid) == {}
        assert all(node.replication.replicas_held == 0 for node in net.nodes)

    def test_env_off_disables_placement(self, monkeypatch):
        monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        owner.share(["kw-off"], b"bypassed")
        net.sim.run()
        assert owner.replication.statistics()["replica_offers"] == 0
        assert all(node.replication.replicas_held == 0 for node in net.nodes)

    def test_declined_offer_rolls_back_holder_marking(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        for node in net.nodes:
            if node is not owner:
                node.replication.policy = ReplicationPolicy()  # will decline
        rid = owner.share(["kw-decline"], b"unwanted")
        net.sim.run()
        assert owner.replication.statistics()["replica_declines"] == 1
        assert owner.replication.holders_of(rid) == {}
        assert all(node.replication.replicas_held == 0 for node in net.nodes)

    def test_unanswered_offer_expires_rolls_back_and_charges(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        first_candidate = owner.replication._candidates()[0][0]
        by_bpid(net)[first_candidate].leave()  # silently unreachable
        rid = owner.share(["kw-expire"], b"no-answer")
        net.sim.run()
        assert owner.replication.holders_of(rid) == {}
        assert owner.request_timeouts.get("replica", 0) == 1

    def test_share_while_offline_places_on_rejoin(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        owner.leave()
        rid = owner.share(["kw-late"], b"shared-offline")
        net.sim.run()
        assert owner.replication.holders_of(rid) == {}
        owner.rejoin()
        net.sim.run()
        assert len(owner.replication.holders_of(rid)) == 1


class TestFailover:
    def test_replica_answers_when_owner_is_down(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[3]
        rid = owner.share(["kw-crash"], b"survives-the-crash")
        net.sim.run()
        assert len(owner.replication.holders_of(rid)) == 1
        owner.leave()
        handle = net.base.issue_query("kw-crash")
        net.sim.run()
        net.base.finish_query(handle)
        assert handle.distinct_answer_count == 1
        replica_rids = [
            item.rid
            for answer in handle.answers
            for item in answer.items
            if is_replica_rid(item.rid)
        ]
        assert replica_rids, "the surviving answer must come from a replica"
        assert sum(n.replication.replica_answers for n in net.nodes) >= 1

    def test_replica_payload_fetchable_behind_advertised_rid(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[3]
        rid = owner.share(["kw-fetch"], b"fetch-me-from-the-replica")
        net.sim.run()
        holder = by_bpid(net)[next(iter(owner.replication.holders_of(rid)))]
        store_rid = holder.replication._copies[(owner.bpid, rid)].store_rid
        advertised = holder.replication.replica_answer_rid(store_rid)
        assert is_replica_rid(advertised)
        assert replica_store_rid(advertised) == store_rid
        assert (
            holder.replication.replica_payload(advertised)
            == b"fetch-me-from-the-replica"
        )

    def test_rf2_never_double_counts_with_everyone_alive(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[3]
        owner.share(["kw-dedup"], b"counted-once")
        net.sim.run()
        handle = net.base.issue_query("kw-dedup")
        net.sim.run()
        net.base.finish_query(handle)
        # Owner and holder may both answer; content dedup collapses them.
        assert handle.network_answer_count >= 1
        assert handle.distinct_answer_count == 1

    def test_initiator_answers_from_its_own_replica(self):
        net = deploy(2, ReplicationPolicy(rf=2))
        base, other = net.nodes
        rid = other.share(["kw-self"], b"held-by-the-initiator")
        net.sim.run()
        assert base.replication.replicas_held == 1
        other.leave()
        handle = base.issue_query("kw-self")
        net.sim.run()
        base.finish_query(handle)
        assert handle.distinct_answer_count == 1
        self_answers = [
            answer for answer in handle.answers if answer.responder == base.bpid
        ]
        assert len(self_answers) == 1
        assert self_answers[0].hops == 0
        assert base.replication.replica_answers == 1


class TestInvalidation:
    def test_unshare_drops_replicas_everywhere(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        rid = owner.share(["kw-delete"], b"to-be-retired")
        net.sim.run()
        assert sum(n.replication.replicas_held for n in net.nodes) == 1
        owner.unshare(rid)
        net.sim.run()
        assert sum(n.replication.replicas_held for n in net.nodes) == 0
        assert owner.replication.statistics()["invalidations"] == 1

    def test_tombstone_blocks_replayed_push(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        rid = owner.share(["kw-zombie"], b"deleted-content")
        net.sim.run()
        holder = by_bpid(net)[next(iter(owner.replication.holders_of(rid)))]
        owner.unshare(rid)
        net.sim.run()
        assert holder.replication.replicas_held == 0
        replay = ReplicaPush(
            token=999,
            owner=owner.bpid,
            owner_address=owner.host.address,
            records=(
                ReplicaRecord(
                    rid=rid, version=1, keywords=("kw-zombie",), payload=b"deleted-content"
                ),
            ),
        )
        holder.replication._on_push(
            SimpleNamespace(payload=replay, src=owner.host.address)
        )
        assert holder.replication.replicas_held == 0
        assert holder.replication.replica_search("kw-zombie", use_index=True) is None

    def test_reshare_read_repairs_the_holder_copy(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        rid = owner.share(["kw-repair"], b"stale-content")
        net.sim.run()
        holder = by_bpid(net)[next(iter(owner.replication.holders_of(rid)))]
        assert holder.replication.held_copies() == {(owner.bpid, rid): 1}
        new_rid = owner.reshare(rid, ["kw-repair"], b"fresh-content")
        net.sim.run()
        assert holder.replication.held_copies() == {(owner.bpid, new_rid): 2}
        assert holder.replication.statistics()["stale_repairs"] == 1
        result = holder.replication.replica_search("kw-repair", use_index=True)
        assert [obj.payload for _rid, obj in result.matches] == [b"fresh-content"]

    def test_repaired_replica_answers_after_owner_crash(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        rid = owner.share(["kw-repaired"], b"v1")
        net.sim.run()
        owner.reshare(rid, ["kw-repaired"], b"v2")
        net.sim.run()
        owner.leave()
        handle = net.base.issue_query("kw-repaired")
        net.sim.run()
        net.base.finish_query(handle)
        assert handle.distinct_answer_count == 1
        payloads = {
            item.payload
            for answer in handle.answers
            for item in answer.items
            if item.payload is not None
        }
        assert payloads == {b"v2"}

    def test_slot_reuse_continues_the_version_sequence(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        rid = owner.share(["kw-slot"], b"first-life")
        net.sim.run()
        owner.unshare(rid)
        net.sim.run()
        rid2 = owner.share(["kw-slot"], b"second-life")
        net.sim.run()
        # StorM reuses the freed slot, so the new record must outversion
        # the tombstone the holders keep for the retired one.
        assert rid2 == rid
        assert sum(n.replication.replicas_held for n in net.nodes) == 1
        holder = by_bpid(net)[next(iter(owner.replication.holders_of(rid2)))]
        assert holder.replication.held_copies()[(owner.bpid, rid2)] == 2


class TestHotPromotion:
    def test_repeated_hits_promote_to_hot_rf(self):
        net = deploy(8, ReplicationPolicy(rf=2, hot_rf=3))
        owner = net.nodes[3]
        rid = owner.share(["kw-hot"], b"zipf-favourite")
        net.sim.run()
        assert len(owner.replication.holders_of(rid)) == 1
        for _ in range(2):  # EWMA 1.0 -> 1.5: trips on the second hit
            handle = net.base.issue_query("kw-hot")
            net.sim.run()
            net.base.finish_query(handle)
        assert rid in owner.replication.hot_records()
        assert len(owner.replication.holders_of(rid)) == 2
        assert sum(n.replication.replicas_held for n in net.nodes) == 2

    def test_cold_records_stay_at_rf(self):
        net = deploy(8, ReplicationPolicy(rf=2, hot_rf=3))
        owner = net.nodes[3]
        rid = owner.share(["kw-cold"], b"asked-once")
        net.sim.run()
        handle = net.base.issue_query("kw-cold")
        net.sim.run()
        net.base.finish_query(handle)
        assert owner.replication.hot_records() == frozenset()
        assert len(owner.replication.holders_of(rid)) == 1


class TestResultCache:
    def test_repeat_query_served_from_cache_without_traffic(self):
        net = deploy(6, ReplicationPolicy(rf=2, cache_capacity=4))
        owner = net.nodes[3]
        owner.share(["kw-cache"], b"zipf-hot")
        net.sim.run()
        first = net.base.issue_query("kw-cache")
        net.sim.run()
        net.base.finish_query(first)
        packets_before = net.network.packets_delivered
        second = net.base.issue_query("kw-cache")
        net.sim.run()
        assert second.served_from_cache
        assert second.finished or second.network_answer_count >= 1
        assert net.network.packets_delivered == packets_before
        assert second.distinct_answer_count == first.distinct_answer_count
        assert net.base.replication.statistics()["cache_hits"] == 1
        net.base.finish_query(second)

    def test_invalidate_drops_the_holders_cached_entry(self):
        net = deploy(2, ReplicationPolicy(rf=2, cache_capacity=4))
        base, owner = net.nodes
        rid = owner.share(["kw-coherent"], b"stale")
        net.sim.run()
        assert base.replication.replicas_held == 1
        first = base.issue_query("kw-coherent")
        net.sim.run()
        base.finish_query(first)
        assert base.replication.cached_answers("kw-coherent") is not None
        owner.reshare(rid, ["kw-coherent"], b"fresh")
        net.sim.run()
        # The invalidate that repaired the replica also dropped the
        # cached result sharing the changed keyword.
        second = base.issue_query("kw-coherent")
        net.sim.run()
        base.finish_query(second)
        assert not second.served_from_cache
        payloads = {
            item.payload
            for answer in second.answers
            for item in answer.items
            if item.payload is not None
        }
        assert b"fresh" in payloads
        assert b"stale" not in payloads

    def test_cache_disabled_without_capacity(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[3]
        owner.share(["kw-nocache"], b"never-cached")
        net.sim.run()
        for _ in range(2):
            handle = net.base.issue_query("kw-nocache")
            net.sim.run()
            net.base.finish_query(handle)
            assert not handle.served_from_cache
        assert net.base.replication.statistics()["cache_hits"] == 0


class TestLivenessInterplay:
    def test_note_peer_alive_is_bounded(self):
        net = deploy(2, ReplicationPolicy(rf=2))
        manager = net.base.replication
        for n in range(80):
            manager.note_peer_alive(
                BPID("liglo-synthetic", n), IPAddress(f"10.9.0.{n}")
            )
        assert len(manager._last_seen) == 64

    def test_refreshes_holder_address_on_answer_evidence(self):
        net = deploy(6, ReplicationPolicy(rf=2))
        owner = net.nodes[2]
        rid = owner.share(["kw-addr"], b"movable")
        net.sim.run()
        holder_bpid = next(iter(owner.replication.holders_of(rid)))
        moved = IPAddress("10.250.0.1")
        owner.replication.note_peer_alive(holder_bpid, moved)
        assert owner.replication.holders_of(rid)[holder_bpid] == moved


class TestStatisticsSurface:
    def test_counters_ride_node_statistics(self):
        net = deploy(6, ReplicationPolicy(rf=2, cache_capacity=4))
        owner = net.nodes[3]
        owner.share(["kw-stats"], b"counted")
        net.sim.run()
        stats = owner.statistics()
        for key in (
            "replicas_held",
            "replica_answers",
            "replicas_pushed",
            "replica_offers",
            "replica_declines",
            "invalidations",
            "stale_repairs",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_invalidations",
        ):
            assert key in stats
        assert stats["replica_offers"] == 1
