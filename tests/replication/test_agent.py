"""Direct execution of the replica-aware search agent.

Engine paths exercise the exec'd shipped copy (whose code runs under an
``<agent:...>`` filename); executing the module's own class here keeps
the agent logic visible to coverage of this package — same pattern as
the legacy StorM agent's direct-execution tests.
"""

import pytest

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.replication import ReplicatedSearchAgent, ReplicationPolicy, is_replica_rid
from repro.storm import StorM
from repro.topology.builders import line


class RecordingContext:
    """Minimal stand-in for AgentContext."""

    def __init__(self, storm, node=None):
        self.storm = storm
        self.services = {"node": node} if node is not None else {}
        self.charged = []
        self.replies = []

    def charge_search(self, result):
        self.charged.append(result)

    def reply(self, items):
        self.replies.append(list(items))


def _storm(count=2, size=16):
    storm = StorM()
    for index in range(count):
        storm.put(["k"], bytes([index]) * size)
    return storm


def _holder_node():
    """A real node that holds one replica of a remote owner's record."""
    net = build_network(
        2,
        config=BestPeerConfig(
            max_direct_peers=4,
            strategy="maxcount",
            replication=ReplicationPolicy(rf=2),
        ),
        topology=line(2),
    )
    base, owner = net.nodes
    owner.share(["k"], b"replica-content!")
    net.sim.run()
    assert base.replication.replicas_held == 1
    return base


class TestReplicatedSearchAgent:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ReplicatedSearchAgent("k", mode="telepathy")

    def test_primary_matches_without_a_node_service(self):
        # Bare engines (no embedding node) still answer from the host's
        # own store; the replica half quietly no-ops.
        context = RecordingContext(_storm())
        ReplicatedSearchAgent("k").execute(context)
        (items,) = context.replies
        assert len(items) == 2
        assert all(item.payload is not None for item in items)
        assert len(context.charged) == 1

    def test_index_and_scan_paths_agree(self):
        counts = {}
        for use_index in (False, True):
            context = RecordingContext(_storm(count=3))
            ReplicatedSearchAgent("k", use_index=use_index).execute(context)
            (items,) = context.replies
            counts[use_index] = len(items)
        assert counts[False] == counts[True] == 3

    def test_silent_miss_unless_reply_empty(self):
        context = RecordingContext(_storm())
        ReplicatedSearchAgent("ghost").execute(context)
        assert context.replies == []
        context = RecordingContext(_storm())
        ReplicatedSearchAgent("ghost", reply_empty=True).execute(context)
        assert context.replies == [[]]

    def test_replica_matches_join_the_answer(self):
        holder = _holder_node()
        context = RecordingContext(holder.storm, node=holder)
        ReplicatedSearchAgent("k").execute(context)
        (items,) = context.replies
        assert len(items) == 1  # holder's own store is empty; replica hits
        assert is_replica_rid(items[0].rid)
        assert items[0].payload == b"replica-content!"
        assert len(context.charged) == 2  # primary scan + replica scan
        assert holder.replication.replica_answers == 1

    def test_metadata_mode_strips_replica_payloads(self):
        holder = _holder_node()
        context = RecordingContext(holder.storm, node=holder)
        ReplicatedSearchAgent("k", mode="metadata", use_index=True).execute(context)
        (items,) = context.replies
        assert items[0].payload is None
        assert items[0].size == 16
