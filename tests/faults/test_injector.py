"""Tests for scheduling fault plans onto a built deployment."""

import pytest

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.errors import FaultPlanError
from repro.faults import FaultEvent, FaultPlan, SimFaultInjector
from repro.faults.plan import (
    KIND_LIGLO_DOWN,
    KIND_LIGLO_UP,
    KIND_NODE_CRASH,
    KIND_NODE_RESTART,
    KIND_PARTITION,
)
from repro.topology.builders import line
from repro.util.retry import RetryPolicy
from repro.util.tracing import Tracer

POLICY = RetryPolicy(
    max_attempts=2, base_delay=0.25, multiplier=2.0, max_delay=1.0, jitter=0.0
)


def deployment(nodes=4, retry=True):
    config = BestPeerConfig(
        max_direct_peers=3,
        retry_policy=POLICY if retry else None,
    )
    return build_network(
        nodes, config=config, topology=line(nodes), tracer=Tracer(enabled=True)
    )


class TestArming:
    def test_unknown_node_rejected(self):
        net = deployment()
        plan = FaultPlan((FaultEvent(1.0, KIND_NODE_CRASH, "node-99"),))
        with pytest.raises(FaultPlanError):
            SimFaultInjector(net, plan).arm()

    def test_unknown_liglo_rejected(self):
        net = deployment()
        plan = FaultPlan((FaultEvent(1.0, KIND_LIGLO_DOWN, "liglo-9"),))
        with pytest.raises(FaultPlanError):
            SimFaultInjector(net, plan).arm()

    def test_arming_twice_rejected(self):
        net = deployment()
        injector = SimFaultInjector(net, FaultPlan())
        injector.arm()
        with pytest.raises(FaultPlanError):
            injector.arm()


class TestNodeChurn:
    def test_crash_takes_node_offline_and_restart_brings_it_back(self):
        net = deployment()
        plan = FaultPlan(FaultPlan.node_session("node-2", 1.0, 2.0))
        injector = SimFaultInjector(net, plan, tracer=net.tracer)
        injector.arm()
        net.sim.run()
        node = net.nodes[2]
        assert node.host.online
        assert injector.applied == {KIND_NODE_CRASH: 1, KIND_NODE_RESTART: 1}
        assert injector.skipped == {}

    def test_restart_leases_fresh_address(self):
        net = deployment()
        before = net.nodes[2].host.address
        plan = FaultPlan(FaultPlan.node_session("node-2", 1.0, 2.0))
        SimFaultInjector(net, plan).arm()
        net.sim.run()
        assert net.nodes[2].host.address != before

    def test_double_crash_is_skipped_not_fatal(self):
        net = deployment()
        plan = FaultPlan(
            (
                FaultEvent(1.0, KIND_NODE_CRASH, "node-2"),
                FaultEvent(1.5, KIND_NODE_CRASH, "node-2"),
                FaultEvent(3.0, KIND_NODE_RESTART, "node-2"),
                FaultEvent(3.5, KIND_NODE_RESTART, "node-2"),
            )
        )
        injector = SimFaultInjector(net, plan)
        injector.arm()
        net.sim.run()
        assert injector.applied == {KIND_NODE_CRASH: 1, KIND_NODE_RESTART: 1}
        assert injector.skipped == {KIND_NODE_CRASH: 1, KIND_NODE_RESTART: 1}

    def test_restart_during_liglo_outage_degrades_not_crashes(self):
        # The LIGLO stays dark past the whole retry budget; rejoin gives
        # up through on_failed and the injector records the degradation.
        net = deployment()
        plan = FaultPlan(FaultPlan.node_session("node-2", 1.0, 1.0))
        plan = plan.extended(FaultPlan.liglo_outage("liglo-0", 0.5, 60.0))
        injector = SimFaultInjector(net, plan, tracer=net.tracer)
        injector.arm()
        net.sim.run()
        assert net.tracer.count("fault", "rejoin-degraded") == 1
        assert net.nodes[2].host.online  # up, if with stale peers


class TestLigloOutage:
    def test_suspend_keeps_address(self):
        net = deployment()
        liglo_host = net.liglo_servers[0].host
        before = liglo_host.address
        plan = FaultPlan(FaultPlan.liglo_outage("liglo-0", 1.0, 2.0))
        injector = SimFaultInjector(net, plan)
        injector.arm()
        net.sim.run()
        assert liglo_host.online
        assert liglo_host.address == before
        assert injector.applied == {KIND_LIGLO_DOWN: 1, KIND_LIGLO_UP: 1}


class TestPartition:
    def test_partition_window_opens_and_heals(self):
        net = deployment()
        names = [node.name for node in net.nodes]
        half = len(names) // 2
        injector = SimFaultInjector(
            net,
            FaultPlan(
                FaultPlan.partition_window([names[:half], names[half:]], 1.0, 2.0)
            ),
        )
        injector.arm()
        observed = []
        net.sim.schedule(2.0, lambda: observed.append(net.network.partitioned))
        net.sim.schedule(4.0, lambda: observed.append(net.network.partitioned))
        net.sim.run()
        assert observed == [True, False]
        assert injector.applied[KIND_PARTITION] == 1

    def test_unknown_hosts_in_groups_are_filtered(self):
        net = deployment()
        plan = FaultPlan(
            FaultPlan.partition_window([["node-1", "ghost"], ["node-2"]], 1.0, 1.0)
        )
        injector = SimFaultInjector(net, plan)
        injector.arm()
        net.sim.run()
        assert injector.applied[KIND_PARTITION] == 1


class TestLinkWindow:
    def test_default_link_restored_after_window(self):
        net = deployment()
        baseline = net.network.default_link
        plan = FaultPlan(
            (FaultPlan.link_window(1.0, 2.0, loss_probability=0.9),)
        )
        observed = []
        SimFaultInjector(net, plan).arm()
        net.sim.schedule(
            2.0, lambda: observed.append(net.network.default_link.loss_probability)
        )
        net.sim.run()
        assert observed == [0.9]
        assert net.network.default_link == baseline

    def test_pair_window_set_and_cleared(self):
        net = deployment()
        plan = FaultPlan(
            (
                FaultPlan.link_window(
                    1.0, 2.0, src="node-0", dst="node-1", latency=0.5
                ),
            )
        )
        observed = []
        SimFaultInjector(net, plan).arm()
        src = net.nodes[0].host
        dst = net.nodes[1].host

        def probe():
            observed.append(
                net.network.link_for(src.address, dst.address).latency
            )

        net.sim.schedule(2.0, probe)
        net.sim.schedule(4.0, probe)
        net.sim.run()
        assert observed[0] == 0.5
        assert observed[1] == net.network.default_link.latency

    def test_pair_window_with_gone_endpoint_is_skipped(self):
        net = deployment()
        plan = FaultPlan(
            (
                FaultEvent(0.5, KIND_NODE_CRASH, "node-1"),
                FaultPlan.link_window(
                    1.0, 2.0, src="node-0", dst="node-1", latency=0.5
                ),
            )
        )
        injector = SimFaultInjector(net, plan)
        injector.arm()
        net.sim.run()
        assert injector.skipped.get("link-window") == 1


class TestDeterminism:
    def test_same_seed_applies_identically(self):
        counts = []
        for _ in range(2):
            net = deployment(nodes=6)
            names = [node.name for node in net.nodes[1:]]
            plan = FaultPlan.churn(names, 0.6, 10.0, seed=9, min_downtime=1.0)
            injector = SimFaultInjector(net, plan, tracer=net.tracer)
            injector.arm()
            net.sim.run()
            counts.append(
                (
                    dict(sorted(injector.applied.items())),
                    dict(sorted(injector.skipped.items())),
                    net.network.packets_delivered,
                    net.network.bytes_carried,
                )
            )
        assert counts[0] == counts[1]
