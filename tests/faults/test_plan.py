"""Tests for fault plans: builders, validation, seeded churn timelines."""

import pickle

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    KIND_LIGLO_DOWN,
    KIND_LIGLO_UP,
    KIND_LINK_WINDOW,
    KIND_NODE_CRASH,
    KIND_NODE_RESTART,
    KIND_PARTITION,
    KIND_PARTITION_HEAL,
    FaultEvent,
    FaultPlan,
)

NAMES = [f"node-{i}" for i in range(1, 11)]


class TestFaultEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(-1.0, KIND_NODE_CRASH, "node-1")

    def test_rejects_unknown_kind(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(1.0, "power-surge", "node-1")

    def test_params_lookup(self):
        event = FaultEvent(1.0, KIND_LINK_WINDOW, params=(("duration", 2.0),))
        assert event.get("duration") == 2.0
        assert event.get("missing", 42) == 42


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            (
                FaultEvent(5.0, KIND_NODE_RESTART, "node-1"),
                FaultEvent(1.0, KIND_NODE_CRASH, "node-1"),
            )
        )
        assert [event.time for event in plan] == [1.0, 5.0]
        assert plan.horizon == 5.0

    def test_empty_plan(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.horizon == 0.0
        assert plan.kinds() == {}

    def test_extended_merges_and_resorts(self):
        plan = FaultPlan(FaultPlan.node_session("node-1", 4.0, 1.0))
        plan = plan.extended(FaultPlan.liglo_outage("liglo-0", 2.0, 1.0))
        assert [event.kind for event in plan] == [
            KIND_LIGLO_DOWN,
            KIND_LIGLO_UP,
            KIND_NODE_CRASH,
            KIND_NODE_RESTART,
        ]

    def test_plan_pickles(self):
        plan = FaultPlan.churn(NAMES, 0.5, 30.0, seed=3)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestBuilders:
    def test_node_session_pair(self):
        crash, restart = FaultPlan.node_session("node-2", 3.0, 2.5)
        assert crash == FaultEvent(3.0, KIND_NODE_CRASH, "node-2")
        assert restart == FaultEvent(5.5, KIND_NODE_RESTART, "node-2")

    def test_node_session_rejects_zero_downtime(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.node_session("node-2", 3.0, 0.0)

    def test_liglo_outage_pair(self):
        down, up = FaultPlan.liglo_outage("liglo-0", 1.0, 4.0)
        assert down.kind == KIND_LIGLO_DOWN and down.time == 1.0
        assert up.kind == KIND_LIGLO_UP and up.time == 5.0

    def test_partition_window(self):
        start, heal = FaultPlan.partition_window(
            [["a", "b"], ["c"]], 2.0, 3.0
        )
        assert start.kind == KIND_PARTITION
        assert start.get("groups") == (("a", "b"), ("c",))
        assert heal.kind == KIND_PARTITION_HEAL and heal.time == 5.0

    def test_link_window_needs_an_override(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.link_window(1.0, 2.0)

    def test_link_window_needs_both_endpoints_or_neither(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.link_window(1.0, 2.0, src="a", loss_probability=0.5)

    def test_link_window_validates_loss(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.link_window(1.0, 2.0, loss_probability=1.5)

    def test_link_window_default_link(self):
        event = FaultPlan.link_window(1.0, 2.0, loss_probability=0.3, latency=0.2)
        assert event.kind == KIND_LINK_WINDOW
        assert event.get("src") is None
        assert event.get("loss_probability") == 0.3
        assert event.get("latency") == 0.2


class TestChurn:
    def test_same_seed_same_timeline(self):
        a = FaultPlan.churn(NAMES, 0.4, 30.0, seed=11)
        b = FaultPlan.churn(NAMES, 0.4, 30.0, seed=11)
        assert a == b

    def test_different_seed_different_timeline(self):
        a = FaultPlan.churn(NAMES, 0.4, 30.0, seed=11)
        b = FaultPlan.churn(NAMES, 0.4, 30.0, seed=12)
        assert a != b

    def test_rate_selects_fraction(self):
        plan = FaultPlan.churn(NAMES, 0.3, 30.0, seed=0)
        assert plan.kinds() == {KIND_NODE_CRASH: 3, KIND_NODE_RESTART: 3}

    def test_zero_rate_is_empty(self):
        assert len(FaultPlan.churn(NAMES, 0.0, 30.0, seed=0)) == 0

    def test_sessions_are_crash_restart_pairs(self):
        plan = FaultPlan.churn(NAMES, 0.5, 30.0, seed=5, start=2.0)
        by_node = {}
        for event in plan:
            by_node.setdefault(event.target, []).append(event)
        for events in by_node.values():
            crash = next(e for e in events if e.kind == KIND_NODE_CRASH)
            restart = next(e for e in events if e.kind == KIND_NODE_RESTART)
            assert 2.0 <= crash.time < 32.0
            assert 0.5 <= restart.time - crash.time <= 5.0

    def test_rejects_bad_rate(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.churn(NAMES, 1.5, 30.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.churn(NAMES, 0.5, 0.0)

    def test_rejects_bad_downtime_band(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.churn(NAMES, 0.5, 30.0, min_downtime=5.0, max_downtime=1.0)
