"""The churn figure replays bit-identically from its seed.

This is the acceptance test for the fault subsystem: a fault plan with
node churn, a LIGLO outage, and a transient partition produces the
*same* rich observables — recall series, per-answer hop counts, bytes
on the wire, drop counters, fault application counts — on every run
with the same seed, serially and under the parallel runner.
"""

from __future__ import annotations

import pytest

from repro.eval.churn import churn_trial, figure_churn
from repro.eval.experiment import ExperimentRunner, ParallelExperimentRunner
from repro.eval.figures import FigureParams

PARAMS = FigureParams(objects_per_node=0, queries=2, seed=0)
NODE_COUNT = 8
RATES = (0.0, 0.5)


def _observables(trials):
    """Everything a replay must reproduce exactly."""
    return [
        (
            t["scheme"],
            t["rate"],
            tuple(t["recalls"]),
            tuple(t["answer_hops"]),
            t["bytes_carried"],
            t["packets_delivered"],
            t["packets_dropped"],
            tuple(sorted(t["drops_by_reason"].items())),
            tuple(sorted(t["faults_applied"].items())),
            t["degraded_queries"],
        )
        for t in trials
    ]


@pytest.fixture(scope="module")
def baseline():
    result = figure_churn(PARAMS, node_count=NODE_COUNT, churn_rates=RATES)
    return result.series, _observables(figure_churn.last_trials)


class TestSeededReplay:
    def test_second_run_is_bit_identical(self, baseline):
        series, observables = baseline
        again = figure_churn(PARAMS, node_count=NODE_COUNT, churn_rates=RATES)
        assert again.series == series
        assert _observables(figure_churn.last_trials) == observables

    def test_serial_runner_matches(self, baseline):
        series, observables = baseline
        result = figure_churn(
            PARAMS,
            node_count=NODE_COUNT,
            churn_rates=RATES,
            runner=ExperimentRunner(),
        )
        assert result.series == series
        assert _observables(figure_churn.last_trials) == observables

    def test_parallel_runner_matches(self, baseline):
        series, observables = baseline
        result = figure_churn(
            PARAMS,
            node_count=NODE_COUNT,
            churn_rates=RATES,
            runner=ParallelExperimentRunner(jobs=2),
        )
        assert result.series == series
        assert _observables(figure_churn.last_trials) == observables

    def test_different_seed_changes_fault_timeline(self, baseline):
        _series, observables = baseline
        figure_churn(
            FigureParams(objects_per_node=0, queries=2, seed=1),
            node_count=NODE_COUNT,
            churn_rates=RATES,
        )
        assert _observables(figure_churn.last_trials) != observables


class TestShape:
    def test_healthy_network_answers_in_full(self, baseline):
        series, _ = baseline
        for name in ("BPR", "BPS"):
            points = dict(series[name])
            assert points[0.0] == 1.0

    def test_faults_fired_at_nonzero_rate(self, baseline):
        _, observables = baseline
        for o in observables:
            faults = dict(o[8])
            if o[1] == 0.0:
                assert faults == {}
            else:
                assert faults.get("node-crash", 0) >= 1
                assert faults.get("liglo-down", 0) == 1
                assert faults.get("partition", 0) == 1

    def test_trial_is_directly_replayable(self):
        a = churn_trial(("BPR", 0.5, NODE_COUNT, PARAMS))
        b = churn_trial(("BPR", 0.5, NODE_COUNT, PARAMS))
        assert a == b
