"""Tests for the thread-timer fault shim used by the live runtime."""

import threading

import pytest

from repro.errors import FaultPlanError
from repro.faults import FaultEvent, FaultPlan, LiveFaultShim
from repro.faults.plan import KIND_NODE_CRASH, KIND_NODE_RESTART


def tiny_plan():
    return FaultPlan(
        (
            FaultEvent(0.01, KIND_NODE_CRASH, "a"),
            FaultEvent(0.02, KIND_NODE_RESTART, "a"),
            FaultEvent(0.03, KIND_NODE_CRASH, "b"),
        )
    )


class TestLiveFaultShim:
    def test_fires_every_event(self):
        shim = LiveFaultShim(tiny_plan())
        seen = []
        lock = threading.Lock()

        def note(event):
            with lock:
                seen.append((event.kind, event.target))

        shim.on(KIND_NODE_CRASH, note).on(KIND_NODE_RESTART, note)
        shim.start()
        assert shim.wait(timeout=5.0)
        assert shim.fired == {KIND_NODE_CRASH: 2, KIND_NODE_RESTART: 1}
        assert sorted(seen) == [
            (KIND_NODE_CRASH, "a"),
            (KIND_NODE_CRASH, "b"),
            (KIND_NODE_RESTART, "a"),
        ]

    def test_unhandled_kinds_are_noops(self):
        shim = LiveFaultShim(tiny_plan())
        shim.start()
        assert shim.wait(timeout=5.0)
        assert shim.errors == []

    def test_handler_exceptions_collected_not_raised(self):
        shim = LiveFaultShim(tiny_plan())

        def explode(_event):
            raise RuntimeError("handler bug")

        shim.on(KIND_NODE_CRASH, explode)
        shim.start()
        assert shim.wait(timeout=5.0)
        assert len(shim.errors) == 2
        assert all(isinstance(exc, RuntimeError) for _e, exc in shim.errors)

    def test_time_scale_compresses_schedule(self):
        plan = FaultPlan((FaultEvent(10.0, KIND_NODE_CRASH, "a"),))
        shim = LiveFaultShim(plan, time_scale=0.001)
        shim.start()
        assert shim.wait(timeout=5.0)

    def test_empty_plan_is_immediately_drained(self):
        shim = LiveFaultShim(FaultPlan())
        assert shim.wait(timeout=0.0)
        shim.start()

    def test_stop_cancels_pending(self):
        plan = FaultPlan((FaultEvent(30.0, KIND_NODE_CRASH, "a"),))
        shim = LiveFaultShim(plan)
        shim.start()
        shim.stop()
        assert not shim.wait(timeout=0.05)
        assert shim.fired == {}

    def test_double_start_rejected(self):
        shim = LiveFaultShim(FaultPlan())
        shim.start()
        with pytest.raises(FaultPlanError):
            shim.start()

    def test_bad_time_scale_rejected(self):
        with pytest.raises(FaultPlanError):
            LiveFaultShim(FaultPlan(), time_scale=0.0)
