"""Determinism guarantees of the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FifoServer, Simulator


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.integers(min_value=0, max_value=9),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_identical_schedules_replay_identically(jobs):
    """Two simulators fed the same schedule produce the same history."""

    def run():
        sim = Simulator()
        history = []
        for delay, tag in jobs:
            sim.schedule(delay, lambda t=tag: history.append((sim.now, t)))
        sim.run()
        return history

    assert run() == run()


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            st.floats(min_value=0, max_value=5, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(min_value=1, max_value=4),
)
def test_fifo_server_completions_replay_identically(jobs, capacity):
    def run():
        sim = Simulator()
        server = FifoServer(sim, capacity=capacity)
        done = []
        for submit_at, service in jobs:
            sim.schedule(
                submit_at,
                lambda s=service: server.submit(s, lambda: done.append(sim.now)),
            )
        sim.run()
        return done

    first, second = run(), run()
    assert first == second
    assert first == sorted(first)


def test_daemon_timers_do_not_keep_run_alive():
    sim = Simulator()
    ticks = []

    def periodic():
        ticks.append(sim.now)
        sim.schedule_daemon(10.0, periodic)

    sim.schedule_daemon(10.0, periodic)
    sim.schedule(25.0, lambda: None)  # real work until t=25
    sim.run()
    # Ticks at 10 and 20 fired while real work was pending; the tick at
    # 30 would outlive the last regular event and must not fire.
    assert ticks == [10.0, 20.0]


def test_daemon_timers_run_under_bounded_run():
    sim = Simulator()
    ticks = []

    def periodic():
        ticks.append(sim.now)
        sim.schedule_daemon(10.0, periodic)

    sim.schedule_daemon(10.0, periodic)
    sim.run(until=35.0)
    assert ticks == [10.0, 20.0, 30.0]
    assert sim.now == 35.0


def test_cancelled_regular_timer_does_not_block_termination():
    sim = Simulator()
    timer = sim.schedule(5.0, lambda: None)
    timer.cancel()
    sim.schedule_daemon(1.0, lambda: None)
    final = sim.run()
    # The run drains the cancelled timer and stops; it must not hang.
    assert final <= 5.0
