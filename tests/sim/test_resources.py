"""Tests for FIFO resources and queueing servers."""

import pytest

from repro.errors import SimulationError
from repro.sim import FifoServer, Resource, Simulator


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        log = []

        def worker(name, hold):
            yield resource.acquire()
            log.append((name, "start", sim.now))
            yield hold
            resource.release()
            log.append((name, "end", sim.now))

        sim.spawn(worker("a", 2.0))
        sim.spawn(worker("b", 3.0))
        sim.run()
        assert log == [
            ("a", "start", 0.0),
            ("a", "end", 2.0),
            ("b", "start", 2.0),
            ("b", "end", 5.0),
        ]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        log = []

        def worker(name):
            yield resource.acquire()
            log.append((name, sim.now))
            yield 1.0
            resource.release()

        for name in ["a", "b", "c"]:
            sim.spawn(worker(name))
        sim.run()
        assert log == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_queue_length(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        resource.acquire()
        resource.acquire()
        resource.acquire()
        assert resource.queue_length == 2


class TestFifoServer:
    def test_single_server_queues_fifo(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=1)
        done = []
        server.submit(2.0, done.append, ("a",))
        server.submit(1.0, done.append, ("b",))
        sim.run()
        # "a" finishes at t=2; "b" starts at 2, finishes at 3 - FIFO, not SJF.
        assert done == [("a",), ("b",)]
        assert sim.now == 3.0

    def test_parallel_servers(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=3)
        finish_times = {}

        def note(name):
            finish_times[name] = sim.now

        for name in ["a", "b", "c"]:
            server.submit(1.0, note, name)
        sim.run()
        assert finish_times == {"a": 1.0, "b": 1.0, "c": 1.0}

    def test_zero_service_time(self):
        sim = Simulator()
        server = FifoServer(sim)
        done = []
        server.submit(0.0, done.append, "x")
        sim.run()
        assert done == ["x"]
        assert sim.now == 0.0

    def test_negative_service_time_raises(self):
        sim = Simulator()
        server = FifoServer(sim)
        with pytest.raises(SimulationError):
            server.submit(-1.0, lambda: None)

    def test_utilization_accounting(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=1)
        server.submit(2.0, lambda: None)
        server.submit(3.0, lambda: None)
        sim.run()
        assert server.busy_time == 5.0
        assert server.jobs_served == 2
        assert server.queue_length == 0

    def test_submission_during_completion_callback(self):
        sim = Simulator()
        server = FifoServer(sim, capacity=1)
        done = []

        def resubmit():
            done.append(sim.now)
            if len(done) < 3:
                server.submit(1.0, resubmit)

        server.submit(1.0, resubmit)
        sim.run()
        assert done == [1.0, 2.0, 3.0]
