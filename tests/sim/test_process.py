"""Tests for coroutine processes."""

import pytest

from repro.errors import ProcessError
from repro.sim import Simulator


class TestProcessBasics:
    def test_sleep_advances_time(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield 5.0
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0.0, 5.0]

    def test_yield_none_resumes_same_time(self):
        sim = Simulator()
        log = []

        def proc():
            yield None
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0.0]

    def test_return_value_stored_as_result(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "answer"

        process = sim.spawn(proc())
        sim.run()
        assert process.result == "answer"
        assert not process.alive

    def test_wait_on_event_receives_value(self):
        sim = Simulator()
        log = []
        event = sim.event()

        def proc():
            value = yield event
            log.append(value)

        sim.spawn(proc())
        sim.schedule(3.0, event.trigger, "hello")
        sim.run()
        assert log == ["hello"]

    def test_join_other_process(self):
        sim = Simulator()
        log = []

        def child():
            yield 2.0
            return "child-result"

        def parent():
            result = yield sim.spawn(child())
            log.append((sim.now, result))

        sim.spawn(parent())
        sim.run()
        assert log == [(2.0, "child-result")]

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, period):
            for _ in range(3):
                yield period
                log.append((name, sim.now))

        sim.spawn(proc("a", 1.0))
        sim.spawn(proc("b", 1.5))
        sim.run()
        # At t=3.0 both resume; "b" scheduled its resume at t=1.5 (before
        # "a" did at t=2.0), so FIFO tie-breaking runs "b" first.
        assert log == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]


class TestProcessFailure:
    def test_unhandled_exception_aborts_run(self):
        sim = Simulator()

        def proc():
            yield 1.0
            raise RuntimeError("boom")

        sim.spawn(proc())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_joiner_observes_child_failure(self):
        sim = Simulator()
        log = []

        def child():
            yield 1.0
            raise ValueError("child died")

        def parent():
            try:
                yield sim.spawn(child())
            except ValueError as exc:
                log.append(str(exc))

        sim.spawn(parent())
        sim.run()
        assert log == ["child died"]

    def test_unhandled_join_failure_propagates(self):
        sim = Simulator()

        def child():
            yield 1.0
            raise ValueError("inner")

        def parent():
            yield sim.spawn(child())

        sim.spawn(parent())
        with pytest.raises(ValueError, match="inner"):
            sim.run()

    def test_negative_sleep_fails_process(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.spawn(proc())
        with pytest.raises(ProcessError):
            sim.run()

    def test_bad_yield_fails_process(self):
        sim = Simulator()

        def proc():
            yield "not a command"

        sim.spawn(proc())
        with pytest.raises(ProcessError):
            sim.run()
