"""The epoch-barrier merge must replay the serial kernel exactly.

The battery drives the same randomly generated event program — seed
events that spawn children, possibly on other virtual nodes — through
the serial kernel and through the lockstep sharded executor at 1, 2 and
4 shards, and asserts the *firing order* (not just the outcome) is
identical.  Cross-shard children go through :meth:`ShardedSimulator.post`
with the ``(time, origin_shard, origin_seq)`` stamp; everything else is
plain ``schedule`` on the owning shard, in the same call order the
serial run used, so the shared sequence counter assigns the serial tie
breaks.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError, ShardingError
from repro.sim import ShardedSimulator, Simulator

LOOKAHEAD = 0.5

#: A program is a list of seed events: (start_time, node, children),
#: children are (delay, node, grandchildren) — delays at or above the
#: lookahead whenever the hop may cross shards.
_grandchild = st.tuples(
    st.floats(min_value=LOOKAHEAD, max_value=3.0),
    st.integers(min_value=0, max_value=7),
)
_child = st.tuples(
    st.floats(min_value=LOOKAHEAD, max_value=3.0),
    st.integers(min_value=0, max_value=7),
    st.lists(_grandchild, max_size=2),
)
_seed_event = st.tuples(
    st.floats(min_value=0.1, max_value=5.0),
    st.integers(min_value=0, max_value=7),
    st.lists(_child, max_size=3),
)
programs = st.lists(_seed_event, min_size=1, max_size=6)


def _run_serial(program):
    sim = Simulator()
    log = []

    def fire(node, label, children):
        log.append((sim.now, label))
        for index, (delay, child_node, *rest) in enumerate(children):
            grand = rest[0] if rest else []
            sim.schedule(
                delay, fire, child_node, f"{label}.{index}", grand
            )

    for index, (start, node, children) in enumerate(program):
        sim.schedule_at(start, fire, node, f"e{index}", children)
    final = sim.run()
    return log, final


def _run_sharded(program, shard_count):
    sharded = ShardedSimulator(shard_count, lookahead=LOOKAHEAD)
    log = []

    def shard_of(node):
        return node % shard_count

    def fire(node, label, children):
        sim = sharded.shards[shard_of(node)]
        log.append((sim.now, label))
        for index, (delay, child_node, *rest) in enumerate(children):
            grand = rest[0] if rest else []
            child_label = f"{label}.{index}"
            if shard_of(child_node) == shard_of(node):
                sim.schedule(delay, fire, child_node, child_label, grand)
            else:
                sharded.post(
                    shard_of(node),
                    shard_of(child_node),
                    sim.now + delay,
                    fire,
                    child_node,
                    child_label,
                    grand,
                )

    for index, (start, node, children) in enumerate(program):
        sharded.shards[shard_of(node)].schedule_at(
            start, fire, node, f"e{index}", children
        )
    final = sharded.run()
    return log, final


@settings(max_examples=60, deadline=None)
@given(programs)
def test_firing_order_matches_serial_at_any_shard_count(program):
    serial_log, serial_final = _run_serial(program)
    for shard_count in (1, 2, 4):
        sharded_log, sharded_final = _run_sharded(program, shard_count)
        assert sharded_log == serial_log
        assert sharded_final == serial_final


@settings(max_examples=30, deadline=None)
@given(programs, st.floats(min_value=1.0, max_value=8.0))
def test_run_until_matches_serial(program, until):
    sim_log = []
    serial = Simulator()

    def serial_fire(label):
        sim_log.append((serial.now, label))

    sharded = ShardedSimulator(2, lookahead=LOOKAHEAD)
    sharded_log = []

    def sharded_fire(shard, label):
        sharded_log.append((sharded.shards[shard].now, label))

    for index, (start, node, _children) in enumerate(program):
        serial.schedule_at(start, serial_fire, f"e{index}")
        sharded.shards[node % 2].schedule_at(
            start, sharded_fire, node % 2, f"e{index}"
        )
    assert sharded.run(until=until) == serial.run(until=until)
    assert sharded_log == sim_log
    assert sharded.now == serial.now


class TestBarrierProtocol:
    def test_pre_run_posts_wait_in_outboxes_then_flush(self):
        sharded = ShardedSimulator(2, lookahead=1.0)
        fired = []
        sharded.post(0, 1, 2.0, fired.append, "crossed")
        assert sharded.pending_events == 1
        assert len(sharded.outboxes[1]) == 1
        sharded.run()
        assert fired == ["crossed"]
        assert all(not outbox for outbox in sharded.outboxes)

    def test_outbox_message_counts_as_regular_work(self):
        # A run must not stop while a barrier message is the only work
        # left: the serial kernel would count the in-flight delivery.
        sharded = ShardedSimulator(2, lookahead=1.0)
        fired = []
        sharded.post(0, 1, 5.0, fired.append, "late")
        assert sharded.run() == 5.0
        assert fired == ["late"]

    def test_mid_run_post_injects_with_serial_tiebreak(self):
        sharded = ShardedSimulator(2, lookahead=1.0)
        log = []

        def crosser():
            # Consumes the next shared sequence number; the local event
            # scheduled immediately after gets a later one, so at the
            # same timestamp the cross-shard message fires first.
            sharded.post(0, 1, sharded.shards[0].now + 1.0, log.append, "cross")
            sharded.shards[0].schedule(1.0, log.append, "local")

        sharded.shards[0].schedule(1.0, crosser)
        sharded.run()
        assert log == ["cross", "local"]

    def test_equal_time_messages_fire_in_post_order(self):
        sharded = ShardedSimulator(2, lookahead=1.0)
        log = []
        sharded.post(0, 1, 2.0, log.append, "first")
        sharded.post(1, 0, 2.0, log.append, "second")
        sharded.run()
        assert log == ["first", "second"]

    def test_stats_count_windows_and_messages(self):
        sharded = ShardedSimulator(2, lookahead=1.0)
        sharded.post(0, 1, 2.0, lambda: None)
        sharded.run()
        stats = sharded.stats.snapshot()
        assert stats["messages"] == 1
        assert stats["injected"] == 1
        assert stats["windows"] >= 1


class TestLookahead:
    def test_single_shard_needs_no_lookahead(self):
        sharded = ShardedSimulator(1)
        assert sharded.lookahead() == math.inf

    def test_no_source_raises(self):
        sharded = ShardedSimulator(2)
        with pytest.raises(ShardingError):
            sharded.lookahead()

    def test_zero_lookahead_rejected(self):
        sharded = ShardedSimulator(2, lookahead=0.0)
        with pytest.raises(ShardingError):
            sharded.lookahead()

    def test_minimum_over_registered_sources(self):
        sharded = ShardedSimulator(2)
        sharded.register_lookahead(lambda: 0.4)
        sharded.register_lookahead(lambda: 0.2)
        assert sharded.lookahead() == 0.2


class TestFacade:
    def test_driver_surface_lands_on_shard_zero(self):
        sharded = ShardedSimulator(3, lookahead=1.0)
        sharded.schedule(1.0, lambda: None)
        sharded.schedule_at(2.0, lambda: None)
        assert sharded.shards[0].pending_events == 2
        assert sharded.shards[1].pending_events == 0

    def test_clocks_align_after_run(self):
        sharded = ShardedSimulator(3, lookahead=1.0)
        sharded.shards[2].schedule(4.0, lambda: None)
        assert sharded.run() == 4.0
        assert [sim.now for sim in sharded.shards] == [4.0, 4.0, 4.0]

    def test_recursive_run_rejected(self):
        sharded = ShardedSimulator(2, lookahead=1.0)

        def recurse():
            sharded.run()

        sharded.schedule(1.0, recurse)
        with pytest.raises(SchedulingError):
            sharded.run()

    def test_daemon_only_work_does_not_block_exit(self):
        sharded = ShardedSimulator(2, lookahead=1.0)
        fired = []
        sharded.schedule_daemon(1.0, fired.append, "daemon")
        sharded.run()
        assert fired == []

    def test_shard_count_validation(self):
        with pytest.raises(ShardingError):
            ShardedSimulator(0)
