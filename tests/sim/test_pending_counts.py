"""O(1) pending-event accounting across schedule / cancel / peek / run."""

from __future__ import annotations

from repro.sim.kernel import Simulator


def _noop():
    pass


def test_pending_events_tracks_cancellation_without_heap_scans():
    sim = Simulator()
    timers = [sim.schedule(float(n), _noop) for n in range(10)]
    assert sim.pending_events == 10
    for timer in timers[:4]:
        timer.cancel()
    assert sim.pending_events == 6
    # Idempotent: a second cancel must not double-count.
    timers[0].cancel()
    assert sim.pending_events == 6


def test_peek_skips_cancelled_without_corrupting_counts():
    sim = Simulator()
    first = sim.schedule(1.0, _noop)
    sim.schedule(2.0, _noop)
    first.cancel()
    assert sim.peek() == 2.0  # pops the cancelled head entry
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0
    assert sim.now == 2.0


def test_run_stops_when_remaining_regular_timers_are_all_cancelled():
    sim = Simulator()

    def reschedule_daemon():
        sim.schedule_daemon(1.0, reschedule_daemon)

    sim.schedule_daemon(1.0, reschedule_daemon)
    late = sim.schedule(100.0, _noop)
    sim.schedule(1.5, late.cancel)
    # After t=1.5 only daemons (and the cancelled timer's heap entry)
    # remain; the run must quiesce instead of spinning daemons forever.
    assert sim.run() <= 2.0


def test_fired_and_cancelled_timers_drain_to_zero():
    sim = Simulator()
    keep = [sim.schedule(float(n), _noop) for n in range(6)]
    keep[2].cancel()
    keep[4].cancel()
    sim.run()
    assert sim.pending_events == 0
    assert sim.peek() is None
