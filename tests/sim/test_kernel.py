"""Tests for the discrete-event simulator kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, 3.0)
        sim.schedule(1.0, fired.append, 1.0)
        sim.schedule(2.0, fired.append, 2.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, times.append, sim.now))
        sim.run()
        # The inner callback records its own firing time.
        assert sim.now == 5.0

    def test_nested_scheduling_during_callback(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, fired.append, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        # Remaining events still runnable afterwards.
        sim.run()
        assert fired == [1, 10]

    def test_step_returns_false_when_idle(self):
        sim = Simulator()
        assert sim.step() is False

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        timer.cancel()
        assert sim.peek() == 2.0

    def test_peek_empty(self):
        sim = Simulator()
        assert sim.peek() is None

    def test_pending_events_counts_live_timers(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        timer = sim.schedule(2.0, lambda: None)
        timer.cancel()
        assert sim.pending_events == 1
        sim.run()

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_firing_order_is_sorted_by_time(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, fired.append, delay)
        sim.run()
        assert fired == sorted(fired)


class TestEvents:
    def test_trigger_wakes_callbacks_with_value(self):
        sim = Simulator()
        seen = []
        event = sim.event()
        event.on_trigger(seen.append)
        sim.schedule(1.0, event.trigger, "payload")
        sim.run()
        assert seen == ["payload"]

    def test_late_registration_still_fires(self):
        sim = Simulator()
        seen = []
        event = sim.event()
        sim.schedule(1.0, event.trigger, 42)
        sim.schedule(2.0, lambda: event.on_trigger(seen.append))
        sim.run()
        assert seen == [42]

    def test_double_trigger_raises(self):
        from repro.errors import SimulationError

        sim = Simulator()
        event = sim.event()
        event.trigger(1)
        with pytest.raises(SimulationError):
            event.trigger(2)

    def test_timeout_helper(self):
        sim = Simulator()
        seen = []
        sim.timeout(2.5, "done").on_trigger(seen.append)
        sim.run()
        assert seen == ["done"]
        assert sim.now == 2.5


class TestCompaction:
    def test_sweep_keeps_pending_exact_and_heap_bounded(self):
        sim = Simulator()
        live = []
        for index in range(1000):
            timer = sim.schedule(1.0 + index, lambda: None)
            if index % 5 == 0:
                live.append(timer)
            else:
                timer.cancel()
        assert sim.pending_events == len(live)
        # The sweep keeps dead entries to at most the live count (plus
        # the small-heap threshold under which sweeps never trigger).
        assert len(sim._heap) <= 2 * len(live) + sim.COMPACTION_MIN_HEAP

    def test_small_heaps_never_swept(self):
        sim = Simulator()
        timers = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
        for timer in timers[1:]:
            timer.cancel()
        # Below COMPACTION_MIN_HEAP the dead entries just sit there.
        assert len(sim._heap) == 10
        assert sim.pending_events == 1

    def test_sweep_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        keep = []
        for index in range(500):
            timer = sim.schedule(1.0 + index, fired.append, index)
            if index % 7 == 0:
                keep.append(index)
            else:
                timer.cancel()
        sim.run()
        assert fired == keep

    def test_cancel_after_sweep_is_harmless(self):
        sim = Simulator()
        timers = [sim.schedule(1.0 + i, lambda: None) for i in range(200)]
        for timer in timers[:150]:
            timer.cancel()
        # These were already swept off the heap; cancelling again must
        # not corrupt the live count.
        for timer in timers[:150]:
            timer.cancel()
        assert sim.pending_events == 50
        sim.run()
        assert sim.pending_events == 0


class TestScheduleAtPast:
    def test_past_time_raises_with_both_clocks(self):
        from repro.errors import SchedulingError

        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        with pytest.raises(SchedulingError) as exc:
            sim.schedule_at(3.0, lambda: None)
        message = str(exc.value)
        assert "t=3.0" in message
        assert "5.0" in message  # names `now`, not just the delta

    def test_exactly_now_is_allowed(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(5.0, fired.append, "ok")
        sim.run()
        assert fired == ["ok"]


class TestShardedHooks:
    def test_peek_entry_returns_time_and_sequence(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        time, seq = sim.peek_entry()
        assert time == 1.0
        assert seq == 2  # second schedule burned the second sequence

    def test_peek_entry_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_entry()[0] == 2.0

    def test_inject_orders_by_explicit_sequence(self):
        sim = Simulator()
        fired = []
        sim.inject(1.0, 5, fired.append, "late-seq")
        sim.inject(1.0, 2, fired.append, "early-seq")
        sim.run()
        assert fired == ["early-seq", "late-seq"]

    def test_inject_in_past_raises(self):
        from repro.errors import SchedulingError

        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.inject(1.0, 1, lambda: None)

    def test_drain_window_exclusive_bound(self):
        sim = Simulator()
        fired = []
        for time in (1.0, 2.0, 3.0):
            sim.schedule(time, fired.append, time)
        count, last = sim.drain_window(3.0)
        assert (count, last) == (2, 2.0)
        assert fired == [1.0, 2.0]
        assert sim.pending_events == 1

    def test_drain_window_inclusive_bound(self):
        sim = Simulator()
        fired = []
        for time in (1.0, 2.0, 3.0):
            sim.schedule(time, fired.append, time)
        count, last = sim.drain_window(3.0, inclusive=True)
        assert (count, last) == (3, 3.0)

    def test_drain_window_fires_daemons_inside_window(self):
        # Unlike run(), a window drain executes daemon timers without a
        # regular-count stop rule: the distributed coordinator owns
        # liveness globally.
        sim = Simulator()
        fired = []
        sim.schedule_daemon(1.0, fired.append, "daemon")
        count, _ = sim.drain_window(2.0)
        assert count == 1
        assert fired == ["daemon"]
