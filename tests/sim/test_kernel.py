"""Tests for the discrete-event simulator kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, 3.0)
        sim.schedule(1.0, fired.append, 1.0)
        sim.schedule(2.0, fired.append, 2.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, times.append, sim.now))
        sim.run()
        # The inner callback records its own firing time.
        assert sim.now == 5.0

    def test_nested_scheduling_during_callback(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, fired.append, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        # Remaining events still runnable afterwards.
        sim.run()
        assert fired == [1, 10]

    def test_step_returns_false_when_idle(self):
        sim = Simulator()
        assert sim.step() is False

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        timer.cancel()
        assert sim.peek() == 2.0

    def test_peek_empty(self):
        sim = Simulator()
        assert sim.peek() is None

    def test_pending_events_counts_live_timers(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        timer = sim.schedule(2.0, lambda: None)
        timer.cancel()
        assert sim.pending_events == 1
        sim.run()

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_firing_order_is_sorted_by_time(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, fired.append, delay)
        sim.run()
        assert fired == sorted(fired)


class TestEvents:
    def test_trigger_wakes_callbacks_with_value(self):
        sim = Simulator()
        seen = []
        event = sim.event()
        event.on_trigger(seen.append)
        sim.schedule(1.0, event.trigger, "payload")
        sim.run()
        assert seen == ["payload"]

    def test_late_registration_still_fires(self):
        sim = Simulator()
        seen = []
        event = sim.event()
        sim.schedule(1.0, event.trigger, 42)
        sim.schedule(2.0, lambda: event.on_trigger(seen.append))
        sim.run()
        assert seen == [42]

    def test_double_trigger_raises(self):
        from repro.errors import SimulationError

        sim = Simulator()
        event = sim.event()
        event.trigger(1)
        with pytest.raises(SimulationError):
            event.trigger(2)

    def test_timeout_helper(self):
        sim = Simulator()
        seen = []
        sim.timeout(2.5, "done").on_trigger(seen.append)
        sim.run()
        assert seen == ["done"]
        assert sim.now == 2.5
