"""Tests for the command-line interface."""

import pytest

from repro.cli import ABLATIONS, FIGURES, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_figure_command_with_scale(self):
        args = build_parser().parse_args(
            ["figure", "5a", "--objects", "50", "--queries", "2"]
        )
        assert args.name == "5a"
        assert args.objects == 50
        assert args.queries == 2

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9z"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_command_parses(self):
        args = build_parser().parse_args(["verify", "--objects", "50"])
        assert args.command == "verify"
        assert args.objects == 50

    def test_every_registered_name_parses(self):
        parser = build_parser()
        for name in FIGURES:
            assert parser.parse_args(["figure", name]).name == name
        for name in ABLATIONS:
            assert parser.parse_args(["ablation", name]).name == name


class TestExecution:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out
        for name in ABLATIONS:
            assert name in out

    def test_figure_small_scale(self, capsys):
        code = main(["figure", "5c", "--objects", "30", "--queries", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5(c)" in out
        assert "BPR" in out

    def test_ablation_small_scale(self, capsys):
        code = main(["ablation", "ttl", "--objects", "30", "--queries", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ablation A3" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "query 1" in out
        assert "speedup" in out
