"""Tests for repro.util.randomness."""

from repro.util.randomness import SeedSequence, derive_rng


def test_same_scope_same_stream():
    a = derive_rng(42, "workload", 3)
    b = derive_rng(42, "workload", 3)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_scope_different_stream():
    a = derive_rng(42, "workload", 3)
    b = derive_rng(42, "workload", 4)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_different_seed_different_stream():
    a = derive_rng(1, "x")
    b = derive_rng(2, "x")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_seed_sequence_deterministic():
    seq1 = SeedSequence(99)
    seq2 = SeedSequence(99)
    assert [seq1.spawn() for _ in range(5)] == [seq2.spawn() for _ in range(5)]


def test_seed_sequence_children_distinct():
    seq = SeedSequence(7)
    children = [seq.spawn() for _ in range(100)]
    assert len(set(children)) == 100
