"""Tests for the retry/backoff policy."""

import pytest

from repro.errors import RetryError, RetryExhaustedError
from repro.util.randomness import derive_rng
from repro.util.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_call


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 4

    def test_rejects_zero_attempts(self):
        with pytest.raises(RetryError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_base_delay(self):
        with pytest.raises(RetryError):
            RetryPolicy(base_delay=-0.1)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(RetryError):
            RetryPolicy(multiplier=0.5)

    def test_rejects_cap_below_base(self):
        with pytest.raises(RetryError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)

    def test_rejects_jitter_out_of_range(self):
        with pytest.raises(RetryError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(RetryError):
            RetryPolicy(jitter=-0.1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_RETRY_POLICY.max_attempts = 10


class TestShouldRetry:
    def test_counts_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_single_attempt_means_no_retries(self):
        assert not RetryPolicy(max_attempts=1).should_retry(1)


class TestDelay:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=100.0, jitter=0.0
        )
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]

    def test_cap_applies(self):
        policy = RetryPolicy(
            max_attempts=9, base_delay=1.0, multiplier=2.0, max_delay=3.0, jitter=0.0
        )
        assert policy.delay(5) == 3.0

    def test_needs_at_least_one_failure(self):
        with pytest.raises(RetryError):
            DEFAULT_RETRY_POLICY.delay(0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.25)
        rng = derive_rng(0, "jitter-band")
        for _ in range(200):
            delay = policy.delay(1, rng)
            assert 0.75 <= delay <= 1.25

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(jitter=0.1)
        first = [policy.delay(n, derive_rng(7, "retry")) for n in (1, 2, 3)]
        second = [policy.delay(n, derive_rng(7, "retry")) for n in (1, 2, 3)]
        assert first == second

    def test_no_rng_means_exact_schedule(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay(1) == policy.base_delay


class TestRetryCall:
    def test_returns_first_success(self):
        calls = []
        result = retry_call(
            lambda: calls.append(1) or "ok",
            RetryPolicy(max_attempts=3, jitter=0.0),
            sleep=lambda _t: None,
        )
        assert result == "ok"
        assert len(calls) == 1

    def test_retries_then_succeeds(self):
        attempts = {"n": 0}
        slept = []

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ValueError("boom")
            return attempts["n"]

        policy = RetryPolicy(
            max_attempts=4, base_delay=0.5, multiplier=2.0, max_delay=8.0, jitter=0.0
        )
        assert retry_call(flaky, policy, sleep=slept.append) == 3
        assert slept == [0.5, 1.0]

    def test_exhaustion_raises_typed_error(self):
        def always_fails():
            raise ValueError("nope")

        policy = RetryPolicy(max_attempts=2, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(always_fails, policy, sleep=lambda _t: None)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_retry_on_filters_exception_types(self):
        def fails_differently():
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_call(
                fails_differently,
                RetryPolicy(max_attempts=3),
                sleep=lambda _t: None,
                retry_on=(ValueError,),
            )
