"""Tests for repro.util.serialization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ids import BPID, AgentId, QueryId
from repro.util.serialization import deserialize, serialize, serialized_size


def test_round_trip_basic_types():
    for obj in [None, 42, 3.14, "text", b"bytes", [1, 2], {"a": 1}, (1, "x")]:
        assert deserialize(serialize(obj)) == obj


def test_round_trip_ids():
    bpid = BPID("liglo-0", 7)
    agent_id = AgentId(bpid, 3)
    query_id = QueryId(bpid, 9)
    assert deserialize(serialize(bpid)) == bpid
    assert deserialize(serialize(agent_id)) == agent_id
    assert deserialize(serialize(query_id)) == query_id


def test_serialized_size_matches_serialize():
    obj = {"keyword": "jazz", "answers": list(range(50))}
    assert serialized_size(obj) == len(serialize(obj))


def test_size_grows_with_payload():
    small = serialized_size(["x"] * 5)
    large = serialized_size(["x" * 100] * 100)
    assert large > small


@given(
    st.recursive(
        st.none() | st.integers() | st.text(max_size=30) | st.binary(max_size=30),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=5), children, max_size=4),
        max_leaves=20,
    )
)
def test_round_trip_property(obj):
    assert deserialize(serialize(obj)) == obj
