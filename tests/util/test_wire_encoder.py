"""WireEncoder: identity-keyed encode-once cache for the wire path."""

from __future__ import annotations

from repro.util.compression import DEFAULT_CODEC
from repro.util.serialization import EncodedPayload, WireEncoder, deserialize
from repro.util.tracing import Tracer


def test_same_object_encodes_once():
    encoder = WireEncoder(DEFAULT_CODEC)
    payload = {"query": "keyword", "hops": 3}
    first = encoder.encode(payload)
    second = encoder.encode(payload)
    assert first is second
    assert (encoder.hits, encoder.misses) == (1, 1)


def test_equal_but_distinct_objects_encode_separately():
    encoder = WireEncoder(DEFAULT_CODEC)
    a = {"query": "keyword"}
    b = {"query": "keyword"}
    first = encoder.encode(a)
    second = encoder.encode(b)
    assert first.raw == second.raw
    assert first.compressed_size == second.compressed_size
    assert encoder.misses == 2


def test_encoding_matches_direct_serialization():
    encoder = WireEncoder(DEFAULT_CODEC)
    payload = ("tuple", 42, b"bytes")
    encoded = encoder.encode(payload)
    assert isinstance(encoded, EncodedPayload)
    assert deserialize(encoded.raw) == payload
    assert encoded.compressed_size == len(DEFAULT_CODEC.compress(encoded.raw))


def test_capacity_zero_disables_caching():
    encoder = WireEncoder(DEFAULT_CODEC, capacity=0)
    payload = {"query": "keyword"}
    encoder.encode(payload)
    encoder.encode(payload)
    assert (encoder.hits, encoder.misses) == (0, 2)


def test_lru_eviction_respects_capacity():
    encoder = WireEncoder(DEFAULT_CODEC, capacity=2)
    keep_alive = [{"n": n} for n in range(3)]
    for payload in keep_alive:
        encoder.encode(payload)
    # payload 0 was evicted; 1 and 2 still hit.
    encoder.encode(keep_alive[1])
    encoder.encode(keep_alive[2])
    assert encoder.hits == 2
    encoder.encode(keep_alive[0])
    assert encoder.misses == 4


def test_recycled_id_does_not_serve_stale_bytes():
    encoder = WireEncoder(DEFAULT_CODEC, capacity=8)
    # The cache keys on id() but stores a strong reference and verifies
    # object identity, so a different object at a recycled address can
    # never be served another payload's bytes.
    results = {}
    for n in range(64):
        payload = {"n": n}
        results[n] = deserialize(encoder.encode(payload).raw)
    assert all(results[n] == {"n": n} for n in range(64))


def test_hit_ratio_and_clear():
    encoder = WireEncoder(DEFAULT_CODEC)
    assert encoder.hit_ratio == 0.0
    payload = {"x": 1}
    encoder.encode(payload)
    encoder.encode(payload)
    assert encoder.hit_ratio == 0.5
    encoder.clear()  # drops cached encodings, keeps the counters
    encoder.encode(payload)
    assert (encoder.hits, encoder.misses) == (1, 2)


def test_tracer_counters_bump():
    tracer = Tracer(enabled=True)
    encoder = WireEncoder(DEFAULT_CODEC, tracer=tracer)
    payload = {"x": 1}
    encoder.encode(payload)
    encoder.encode(payload)
    assert tracer.counter("net", "encode-miss") == 1
    assert tracer.counter("net", "encode-hit") == 1
