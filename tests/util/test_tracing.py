"""Tests for repro.util.tracing."""

from repro.util.tracing import NULL_TRACER, TraceEvent, Tracer


def test_record_and_select():
    tracer = Tracer()
    tracer.record(1.0, "net", "send", src="a", dst="b")
    tracer.record(2.0, "net", "recv", src="a", dst="b")
    tracer.record(3.0, "agent", "execute", host="b")
    assert tracer.count("net") == 2
    assert tracer.count("net", "send") == 1
    (event,) = tracer.select("agent")
    assert event.get("host") == "b"
    assert event.get("missing", "default") == "default"


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(0.0, "net", "send")
    assert tracer.events == []


def test_category_filter():
    tracer = Tracer(categories=frozenset({"net"}))
    tracer.record(0.0, "net", "send")
    tracer.record(0.0, "agent", "execute")
    assert tracer.count("net") == 1
    assert tracer.count("agent") == 0


def test_sink_callback():
    seen = []
    tracer = Tracer(sink=seen.append)
    tracer.record(0.0, "net", "send")
    assert len(seen) == 1
    assert isinstance(seen[0], TraceEvent)


def test_clear():
    tracer = Tracer()
    tracer.record(0.0, "x", "y")
    tracer.clear()
    assert tracer.events == []


def test_timers_accumulate():
    tracer = Tracer()
    tracer.add_time("agent-path", "execute", 0.5)
    tracer.add_time("agent-path", "execute", 0.25)
    assert tracer.timer("agent-path", "execute") == 0.75
    assert tracer.timer("agent-path", "never") == 0.0


def test_timers_respect_disabled_and_filter():
    disabled = Tracer(enabled=False)
    disabled.add_time("agent-path", "execute", 1.0)
    assert disabled.timer("agent-path", "execute") == 0.0
    filtered = Tracer(categories=frozenset({"net"}))
    filtered.add_time("agent-path", "execute", 1.0)
    filtered.add_time("net", "encode", 1.0)
    assert filtered.timer("agent-path", "execute") == 0.0
    assert filtered.timer("net", "encode") == 1.0


def test_clear_drops_timers_and_counters():
    tracer = Tracer()
    tracer.bump("net", "encode-hit")
    tracer.add_time("agent-path", "clone", 1.0)
    tracer.clear()
    assert tracer.counter("net", "encode-hit") == 0
    assert tracer.timer("agent-path", "clone") == 0.0


def test_event_str_contains_fields():
    event = TraceEvent(1.25, "net", "drop", (("reason", "offline"),))
    text = str(event)
    assert "net:drop" in text
    assert "offline" in text


def test_null_tracer_is_disabled():
    NULL_TRACER.record(0.0, "net", "send")
    assert NULL_TRACER.events == []
