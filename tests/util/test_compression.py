"""Tests for repro.util.compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.compression import DEFAULT_CODEC, GzipCodec, IdentityCodec


class TestGzipCodec:
    def test_round_trip(self):
        codec = GzipCodec()
        data = b"hello bestpeer " * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_compresses_redundant_data(self):
        codec = GzipCodec()
        data = b"a" * 10_000
        assert len(codec.compress(data)) < len(data)

    def test_deterministic_output(self):
        codec = GzipCodec()
        data = b"deterministic payload"
        assert codec.compress(data) == codec.compress(data)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            GzipCodec(level=10)
        with pytest.raises(ValueError):
            GzipCodec(level=-1)

    def test_level_zero_round_trips(self):
        codec = GzipCodec(level=0)
        data = b"stored, not compressed"
        assert codec.decompress(codec.compress(data)) == data

    def test_corrupt_payload_raises_value_error(self):
        codec = GzipCodec()
        with pytest.raises(ValueError):
            codec.decompress(b"this is not gzip")

    def test_truncated_payload_raises_value_error(self):
        codec = GzipCodec()
        compressed = codec.compress(b"x" * 1000)
        with pytest.raises(ValueError):
            codec.decompress(compressed[: len(compressed) // 2])

    @given(st.binary(max_size=4096))
    def test_round_trip_property(self, data):
        codec = GzipCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestIdentityCodec:
    def test_is_noop(self):
        codec = IdentityCodec()
        data = b"untouched"
        assert codec.compress(data) == data
        assert codec.decompress(data) == data


def test_default_codec_is_gzip():
    assert isinstance(DEFAULT_CODEC, GzipCodec)
    assert DEFAULT_CODEC.name == "gzip"
