"""Tests for repro.util.stats."""

import math
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import RunningStats, mean, percentile

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_accepts_generator(self):
        assert mean(x for x in [2.0, 4.0]) == 3.0


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7], 30) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -1)


class TestRunningStats:
    def test_matches_statistics_module(self):
        values = [1.5, 2.5, -3.0, 10.0, 0.0]
        stats = RunningStats()
        stats.extend(values)
        assert stats.count == 5
        assert stats.mean == pytest.approx(statistics.mean(values))
        assert stats.variance == pytest.approx(statistics.variance(values))
        assert stats.stdev == pytest.approx(statistics.stdev(values))
        assert stats.minimum == -3.0
        assert stats.maximum == 10.0

    def test_single_sample_zero_variance(self):
        stats = RunningStats()
        stats.add(4.2)
        assert stats.variance == 0.0
        assert stats.stdev == 0.0

    def test_empty_raises(self):
        stats = RunningStats()
        with pytest.raises(ValueError):
            _ = stats.mean
        with pytest.raises(ValueError):
            _ = stats.variance

    def test_repr_mentions_count(self):
        stats = RunningStats()
        assert "empty" in repr(stats)
        stats.add(1.0)
        assert "n=1" in repr(stats)

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_welford_agrees_with_naive(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(statistics.mean(values), abs=1e-6)
        assert math.sqrt(stats.variance) == pytest.approx(
            statistics.stdev(values), abs=1e-5
        )
