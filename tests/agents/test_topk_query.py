"""End-to-end in-network top-k query processing.

Drives whole BestPeer deployments with ``BestPeerConfig.top_k`` set and
checks the contract from the initiator's chair: the merged top-k always
equals exhaustive-then-truncate, dominated answers die in-network
(digests instead of payloads), and the legacy exhaustive path — k=None
or ``REPRO_TOPK=off`` — is behaviourally untouched.
"""

import pytest

from repro.agents.costs import AgentCosts
from repro.agents.messages import AnswerMessage
from repro.agents.storm_agent import StorMSearchAgent
from repro.agents.topk import (
    ScoredAnswer,
    TOPK_ENV_VAR,
    TopKDigest,
    TopKSearchAgent,
    topk_bypassed,
)
from repro.core import BestPeerConfig, build_network
from repro.errors import AgentError, BestPeerError
from repro.topology import line, star

FAST = AgentCosts(
    class_install_time=0.005,
    state_install_time=0.001,
    execute_overhead=0.0,
    page_io_time=0.0001,
    object_match_time=0.000001,
)


def config(**overrides):
    defaults = dict(max_direct_peers=8, agent_costs=FAST, ttl=7)
    defaults.update(overrides)
    return BestPeerConfig(**defaults)


def gradient_fill(node, index):
    """Three matches per node with node-and-object-varying TF scores."""
    for i in range(3):
        node.share(["jazz"] + ["pad"] * ((index + i) % 5), bytes([index]) * 64)


def run_query(node_count=6, topology=None, fill=gradient_fill, **overrides):
    net = build_network(
        node_count,
        config=config(**overrides),
        topology=topology if topology is not None else line(node_count),
    )
    net.populate(fill, skip_base=True)
    handle = net.base.issue_query("jazz")
    net.sim.run()
    return net, handle


class TestTopKEndToEnd:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_topk_equals_exhaustive_truncate(self, k):
        _net, exhaustive = run_query()
        _net2, topk = run_query(top_k=k)
        assert topk.top_answers() == exhaustive.top_answers(k)

    def test_topk_on_star_topology(self):
        _net, exhaustive = run_query(topology=star(6))
        _net2, topk = run_query(topology=star(6), top_k=3)
        assert topk.top_answers() == exhaustive.top_answers(3)

    def test_dominated_answers_die_in_network(self):
        _net, exhaustive = run_query()
        _net2, topk = run_query(top_k=2)
        assert exhaustive.network_answer_count == 15  # 5 nodes x 3 objects
        assert topk.network_answer_count < exhaustive.network_answer_count
        assert topk.dominated_dropped > 0
        # Every network answer travelling in top-k mode is scored.
        assert all(isinstance(a, ScoredAnswer) for a in topk.answers)
        assert all(isinstance(d, TopKDigest) for d in topk.digests)

    def test_conservation_of_matches(self):
        # survivors + dominated = every match in the network.
        _net, topk = run_query(top_k=2)
        assert topk.network_answer_count + topk.dominated_dropped == 15

    def test_initiator_seed_tightens_threshold_from_hop_one(self):
        def weak_everywhere(node, index):
            node.share(["jazz"] + ["pad"] * 4, bytes([index]) * 64)

        net = build_network(6, config=config(top_k=2), topology=line(6))
        net.populate(weak_everywhere, skip_base=True)
        net.base.share(["jazz"], b"b" * 64)  # score 1.0 at the base
        net.base.share(["jazz"], b"B" * 64)
        topk = net.base.issue_query("jazz")
        net.sim.run()
        # The initiator already holds the global top-2: every remote
        # match is dominated on arrival, so only digests come back.
        assert topk.network_answer_count == 0
        assert topk.dominated_dropped == 5
        assert len(topk.digests) == 5
        top = topk.top_answers()
        assert [score for score, _h, _r in top] == [1.0, 1.0]
        assert all(holder == net.base.bpid for _s, holder, _r in top)

    def test_digest_carries_liveness_and_resets_quiet_period(self):
        def weak_everywhere(node, index):
            node.share(["jazz", "pad"], bytes([index]) * 64)

        net = build_network(6, config=config(top_k=1), topology=line(6))
        net.populate(weak_everywhere, skip_base=True)
        net.base.share(["jazz"], b"b" * 64)
        handle = net.base.issue_query("jazz")
        net.sim.run()
        assert handle.last_arrival is not None  # digests count as activity
        assert handle.digest_times == sorted(handle.digest_times)

    def test_metadata_mode_ships_no_payloads(self):
        _net, handle = run_query(top_k=3, result_mode="metadata")
        items = [item for answer in handle.answers for item in answer.items]
        assert items and all(item.payload is None for item in items)
        assert all(item.size > 0 for item in items)

    def test_scored_answers_feed_reconfiguration(self):
        net, handle = run_query(top_k=3)
        net.base.finish_query(handle)
        # ScoredAnswer duck-types AnswerMessage: responders become
        # reconfiguration candidates exactly like exhaustive answers.
        assert len(net.base.peers) >= 1

    def test_statistics_count_dominated(self):
        net, _handle = run_query(top_k=2)
        assert net.base.statistics()["dominated_dropped"] > 0

    def test_use_index_and_scan_agree_end_to_end(self):
        _net, scanned = run_query(top_k=3)
        _net2, indexed = run_query(top_k=3, use_index=True)
        assert indexed.top_answers() == scanned.top_answers()

    def test_search_own_store_disabled(self):
        _net, handle = run_query(top_k=3, search_own_store=False)
        assert handle.local_scored is None
        assert handle.top_answers()  # network answers still ranked


class TestLegacyPathPreserved:
    def test_k_none_uses_legacy_agent(self):
        _net, handle = run_query()
        assert handle.top_k is None
        assert all(type(a) is AnswerMessage for a in handle.answers)
        assert handle.digests == [] and handle.dominated_dropped == 0

    def test_bypass_disables_topk(self, monkeypatch):
        monkeypatch.setenv(TOPK_ENV_VAR, "off")
        assert topk_bypassed()
        _net, handle = run_query(top_k=2)
        assert handle.top_k is None
        assert all(type(a) is AnswerMessage for a in handle.answers)
        assert handle.network_answer_count == 15

    def test_bypass_on_keeps_topk(self, monkeypatch):
        monkeypatch.setenv(TOPK_ENV_VAR, "on")
        assert not topk_bypassed()
        _net, handle = run_query(top_k=2)
        assert handle.top_k == 2

    def test_invalid_bypass_value_rejected(self, monkeypatch):
        monkeypatch.setenv(TOPK_ENV_VAR, "maybe")
        with pytest.raises(AgentError):
            topk_bypassed()


class TestAgentContract:
    def test_agent_validation(self):
        with pytest.raises(ValueError):
            TopKSearchAgent("jazz", 0)
        with pytest.raises(ValueError):
            TopKSearchAgent("jazz", 3, mode="broadcast")

    def test_forward_merges_state_flag(self):
        assert TopKSearchAgent.forward_merges_state is True
        assert StorMSearchAgent.forward_merges_state is False

    def test_state_round_trips_plain(self):
        agent = TopKSearchAgent(
            "jazz", 4, entries=[(0.5, "10.0.0.1", 3, 1, 2)]
        )
        state = agent.get_state()
        clone = TopKSearchAgent.from_state(state)
        assert clone.keyword == "jazz" and clone.k == 4
        assert clone.entries == [(0.5, "10.0.0.1", 3, 1, 2)]

    def test_config_validation(self):
        with pytest.raises(BestPeerError):
            BestPeerConfig(top_k=0)
        with pytest.raises(BestPeerError):
            BestPeerConfig(top_k=0x10000)
        assert BestPeerConfig(top_k=16).top_k == 16
