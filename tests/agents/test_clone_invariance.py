"""Property: clone results are independent of install-cache state.

The paper's result-return invariant: a flooded agent's clones send
their answers *out-of-network*, straight back to the initiator, so what
the initiator collects depends only on the overlay and the data — never
on whether a host's class install was a fresh compile or a process-wide
compile-cache rebind.  Seeded random topologies under both MaxCount and
MinHops reconfiguration must produce bit-identical answers (responders,
hop counts, answer counts), reconfigured peer sets, and wire bytes with
the caches cold, warm, or bypassed.
"""

from __future__ import annotations

import os
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agents import codeship
from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.topology.builders import random_graph


def _run_flood(nodes: int, degree: int, seed: int, strategy: str):
    """One seeded flood query; returns everything the initiator observes."""
    # ``degree`` is the overlay's *average* degree; individual nodes may
    # exceed it, so the peer table must hold a worst-case fan-in.
    deployment = build_network(
        nodes,
        config=BestPeerConfig(max_direct_peers=nodes - 1, strategy=strategy),
        topology=random_graph(nodes, degree, seed=seed),
    )
    rng = random.Random(seed)
    holders = rng.sample(range(1, nodes), k=min(2, nodes - 1))
    for holder in holders:
        count = 1 + rng.randrange(3)
        for index in range(count):
            deployment.nodes[holder].share(["needle"], bytes([holder, index]) * 8)
    handle = deployment.base.issue_query("needle")
    deployment.sim.run()
    answers = sorted(
        (str(answer.responder), answer.hops, answer.answer_count)
        for answer in handle.answers
    )
    deployment.base.finish_query(handle)
    reconfigured_peers = sorted(str(b) for b in deployment.base.peers.bpids())
    return (
        answers,
        reconfigured_peers,
        deployment.network.bytes_carried,
        deployment.sim.now,
    )


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    nodes=st.integers(min_value=4, max_value=8),
    degree=st.integers(min_value=2, max_value=3),
    strategy=st.sampled_from(["maxcount", "minhops"]),
)
def test_clone_results_independent_of_install_cache_state(
    seed, nodes, degree, strategy
):
    previous = os.environ.pop(codeship.NO_CACHE_ENV_VAR, None)
    try:
        codeship.clear_caches()
        cold = _run_flood(nodes, degree, seed, strategy)
        # Second run: the compile/source caches are now warm.
        warm = _run_flood(nodes, degree, seed, strategy)
        os.environ[codeship.NO_CACHE_ENV_VAR] = "1"
        codeship.clear_caches()
        bypassed = _run_flood(nodes, degree, seed, strategy)
    finally:
        if previous is None:
            os.environ.pop(codeship.NO_CACHE_ENV_VAR, None)
        else:
            os.environ[codeship.NO_CACHE_ENV_VAR] = previous
        codeship.clear_caches()
    assert cold == warm == bypassed
