"""Tests for the agent execute-path profiler."""

import pytest

from repro.agents.profile import PROFILE_CATEGORY, PROFILE_OPS, AgentPathProfiler
from repro.agents.storm_agent import StorMSearchAgent
from repro.util.tracing import Tracer

from tests.agents.helpers import AgentRig


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestAgentPathProfiler:
    def test_timed_counts_and_times(self):
        profiler = AgentPathProfiler(node="n1", clock=FakeClock())
        with profiler.timed("extract"):
            pass
        with profiler.timed("extract"):
            pass
        assert profiler.count("extract") == 2
        assert profiler.seconds("extract") == pytest.approx(2.0)
        assert profiler.count("install") == 0
        assert profiler.seconds("install") == 0.0

    def test_timed_records_even_on_raise(self):
        profiler = AgentPathProfiler(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with profiler.timed("execute"):
                raise RuntimeError("agent blew up")
        assert profiler.count("execute") == 1

    def test_mirrors_into_tracer(self):
        tracer = Tracer()
        profiler = AgentPathProfiler(node="n1", tracer=tracer, clock=FakeClock())
        with profiler.timed("install"):
            pass
        assert tracer.counter(PROFILE_CATEGORY, "install") == 1
        assert tracer.timer(PROFILE_CATEGORY, "install") == pytest.approx(1.0)

    def test_snapshot_and_repr(self):
        profiler = AgentPathProfiler(node="n1", clock=FakeClock())
        profiler.add("clone", 0.5)
        profiler.add("clone", 0.25)
        snap = profiler.snapshot()
        assert snap == {"clone": {"count": 2, "seconds": 0.75}}
        assert "clone=2" in repr(profiler)

    def test_ops_constant_covers_the_execute_path(self):
        assert PROFILE_OPS == ("extract", "install", "execute", "clone")


class TestEngineWiring:
    def test_flood_populates_every_op(self):
        rig = AgentRig()
        a, b, c = rig.line("a", "b", "c")
        b.put_objects("k", 1)
        c.put_objects("k", 1)
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        # Initiator: one extraction, one dispatch fan-out, no execution.
        assert a.engine.profiler.count("extract") == 1
        assert a.engine.profiler.count("clone") == 1
        assert a.engine.profiler.count("execute") == 0
        # Relays: one install, one execution, one forward fan-out each.
        for node in (b, c):
            assert node.engine.profiler.count("install") == 1
            assert node.engine.profiler.count("execute") == 1
            assert node.engine.profiler.count("clone") == 1
        # The shared tracer aggregates the per-node profiles.
        assert rig.tracer.counter(PROFILE_CATEGORY, "execute") == 2
        assert rig.tracer.counter(PROFILE_CATEGORY, "install") == 2
        assert rig.tracer.timer(PROFILE_CATEGORY, "execute") >= 0.0
