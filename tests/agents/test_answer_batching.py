"""Answer batching: outbox coalescing on send, per-answer fan-in on receive.

Batching is an encoding-layer concern only — a multi-reply agent ships
one :class:`BatchedAnswers` frame, but the receiver records each answer
individually, so query accounting never sees the difference.
"""

from __future__ import annotations

from repro.agents.agent import Agent
from repro.agents.engine import PROTO_ANSWER, _coalesce_answers
from repro.agents.messages import AnswerItem, AnswerMessage, BatchedAnswers
from repro.ids import BPID, QueryId
from repro.net.address import IPAddress
from repro.storm.heapfile import RecordId

from tests.agents.helpers import AgentRig


class TwoReplyAgent(Agent):
    """Replies twice from every visited host (a multi-part responder).

    Imports live inside ``execute``: shipped agent source runs in a
    fresh namespace on the remote host.
    """

    def execute(self, context):
        from repro.agents.messages import AnswerItem
        from repro.storm.heapfile import RecordId

        context.reply(
            [AnswerItem(rid=RecordId(0, 0), keywords=("k",), size=3, payload=b"one")]
        )
        context.reply(
            [AnswerItem(rid=RecordId(0, 1), keywords=("k",), size=3, payload=b"two")]
        )


class OneReplyAgent(Agent):
    def execute(self, context):
        from repro.agents.messages import AnswerItem
        from repro.storm.heapfile import RecordId

        context.reply(
            [AnswerItem(rid=RecordId(0, 0), keywords=("k",), size=3, payload=b"one")]
        )


def _answer(serial: int, dst_serial: int = 1) -> AnswerMessage:
    origin = BPID("liglo-test", 0)
    return AnswerMessage(
        query_id=QueryId(origin, dst_serial),
        responder=BPID("liglo-test", 1),
        responder_address=IPAddress("10.0.0.2"),
        hops=1,
        items=(
            AnswerItem(rid=RecordId(0, serial), keywords=("k",), size=1, payload=b"x"),
        ),
    )


DST_A = IPAddress("10.0.0.1")
DST_B = IPAddress("10.0.0.9")


class TestCoalesceAnswers:
    def test_run_of_same_dst_and_query_becomes_one_batch(self):
        outbox = [
            (DST_A, PROTO_ANSWER, _answer(1)),
            (DST_A, PROTO_ANSWER, _answer(2)),
            (DST_A, PROTO_ANSWER, _answer(3)),
        ]
        ((dst, protocol, payload),) = _coalesce_answers(outbox)
        assert dst == DST_A and protocol == PROTO_ANSWER
        assert isinstance(payload, BatchedAnswers)
        assert payload.answers == (_answer(1), _answer(2), _answer(3))

    def test_single_answer_is_not_wrapped(self):
        outbox = [(DST_A, PROTO_ANSWER, _answer(1))]
        assert _coalesce_answers(outbox) == outbox

    def test_different_queries_do_not_merge(self):
        outbox = [
            (DST_A, PROTO_ANSWER, _answer(1, dst_serial=1)),
            (DST_A, PROTO_ANSWER, _answer(2, dst_serial=2)),
        ]
        assert _coalesce_answers(outbox) == outbox

    def test_different_destinations_do_not_merge(self):
        outbox = [
            (DST_A, PROTO_ANSWER, _answer(1)),
            (DST_B, PROTO_ANSWER, _answer(2)),
        ]
        assert _coalesce_answers(outbox) == outbox

    def test_non_answer_sends_break_the_run_and_keep_order(self):
        other = (DST_A, "other.proto", {"x": 1})
        outbox = [
            (DST_A, PROTO_ANSWER, _answer(1)),
            other,
            (DST_A, PROTO_ANSWER, _answer(2)),
        ]
        coalesced = _coalesce_answers(outbox)
        assert coalesced == outbox  # runs of one stay unwrapped, order kept

    def test_empty_outbox(self):
        assert _coalesce_answers([]) == []


class TestEngineBatching:
    def test_multi_reply_agent_ships_one_batched_frame(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        a.engine.dispatch(TwoReplyAgent())
        rig.sim.run()
        # One packet arrived, carrying both answers as a batch.
        (payload,) = a.answers
        assert isinstance(payload, BatchedAnswers)
        assert len(payload.answers) == 2
        assert [i.payload for ans in payload.answers for i in ans.items] == [
            b"one",
            b"two",
        ]

    def test_single_reply_agent_ships_a_plain_answer(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        a.engine.dispatch(OneReplyAgent())
        rig.sim.run()
        (payload,) = a.answers
        assert isinstance(payload, AnswerMessage)


class TestNodeReceivesBatch:
    def test_batch_records_each_answer_individually(self):
        """QueryHandle accounting is batch-blind: N answers, not 1."""
        from repro import BestPeerConfig, build_network, line

        net = build_network(2, config=BestPeerConfig(), topology=line(2))
        handle = net.base.issue_query("nothing-stored")
        net.sim.run()
        assert handle.network_answer_count == 0

        responder = net.nodes[1]
        answers = tuple(
            AnswerMessage(
                query_id=handle.query_id,
                responder=responder.bpid,
                responder_address=responder.host.address,
                hops=1,
                items=(
                    AnswerItem(
                        rid=RecordId(0, i), keywords=("k",), size=1, payload=b"x"
                    ),
                ),
            )
            for i in range(3)
        )
        responder.host.send(
            net.base.host.address, "bestpeer.answer", BatchedAnswers(answers)
        )
        net.sim.run()
        assert handle.network_answer_count == 3
        assert tuple(handle.answers) == answers
