"""Shared scaffolding for agent tests: a tiny hand-wired agent network."""

from __future__ import annotations

from repro.agents.engine import PROTO_ANSWER, AgentEngine
from repro.agents.costs import AgentCosts
from repro.ids import BPID
from repro.net import Network
from repro.sim import Simulator
from repro.storm import StorM
from repro.util.tracing import Tracer

#: Costs that keep test timings easy to reason about.
FAST_COSTS = AgentCosts(
    class_install_time=0.01,
    state_install_time=0.001,
    execute_overhead=0.0,
    page_io_time=0.0,
    object_match_time=0.0,
)


class AgentHost:
    """A host + engine + StorM store + answer inbox, wired by hand."""

    def __init__(self, rig: "AgentRig", name: str):
        self.rig = rig
        self.host = rig.network.create_host(name, dispatch_time=0.0)
        self.bpid = BPID("liglo-test", len(rig.nodes))
        self.storm = StorM()
        self.peers: list["AgentHost"] = []
        self.answers = []
        self.engine = AgentEngine(
            self.host,
            self.bpid,
            services={"storm": self.storm},
            costs=rig.costs,
            get_peers=lambda: [p.host.address for p in self.peers if p.host.online],
            tracer=rig.tracer,
        )
        self.host.bind(PROTO_ANSWER, lambda packet: self.answers.append(packet.payload))

    def put_objects(self, keyword: str, count: int, size: int = 32) -> None:
        for i in range(count):
            self.storm.put([keyword], bytes([i % 256]) * size)


class AgentRig:
    """Simulator + network + a set of AgentHosts with explicit peer links."""

    def __init__(self, costs: AgentCosts = FAST_COSTS):
        self.sim = Simulator()
        self.tracer = Tracer()
        self.network = Network(self.sim, tracer=self.tracer)
        self.costs = costs
        self.nodes: dict[str, AgentHost] = {}

    def add(self, name: str) -> AgentHost:
        node = AgentHost(self, name)
        self.nodes[name] = node
        return node

    def link(self, a: AgentHost, b: AgentHost) -> None:
        """Bidirectional peer link."""
        a.peers.append(b)
        b.peers.append(a)

    def line(self, *names: str) -> list[AgentHost]:
        """Build a chain a - b - c - ..."""
        nodes = [self.add(name) for name in names]
        for left, right in zip(nodes, nodes[1:]):
            self.link(left, right)
        return nodes
