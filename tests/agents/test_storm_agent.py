"""Tests for the paper's StorM search agent and answer messages."""

import pytest

from repro.agents.costs import AgentCosts
from repro.agents.storm_agent import StorMSearchAgent

from tests.agents.helpers import AgentRig


class TestStorMSearchAgent:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            StorMSearchAgent("k", mode="telepathy")

    def test_index_and_scan_paths_agree(self):
        answers = {}
        for use_index in (False, True):
            rig = AgentRig()
            a, b = rig.line("a", "b")
            b.put_objects("jazz", 3, size=16)
            a.engine.dispatch(StorMSearchAgent("jazz", use_index=use_index))
            rig.sim.run()
            (answer,) = a.answers
            answers[use_index] = answer.answer_count
        assert answers[False] == answers[True] == 3

    def test_reply_empty_reports_zero_matches(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        # b shares nothing; a silent miss by default, an answer if asked.
        a.engine.dispatch(StorMSearchAgent("ghost", reply_empty=True))
        rig.sim.run()
        (answer,) = a.answers
        assert answer.answer_count == 0
        assert answer.answer_bytes == 0

    def test_answer_bytes_totals_item_sizes(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        b.put_objects("k", 2, size=40)
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        (answer,) = a.answers
        assert answer.answer_bytes == 80


class RecordingContext:
    """Minimal stand-in for AgentContext to run the *original* class.

    Engine tests exercise the exec'd shipped copy (its code runs under an
    ``<agent:...>`` filename); executing the module's own class here keeps
    the search logic visible to coverage of this package.
    """

    def __init__(self, storm):
        self.storm = storm
        self.charged = []
        self.replies = []

    def charge_search(self, result):
        self.charged.append(result)

    def reply(self, items):
        self.replies.append(list(items))


class TestDirectExecution:
    def _storm(self, count=2, size=16):
        from repro.storm import StorM

        storm = StorM()
        for index in range(count):
            storm.put(["k"], bytes([index]) * size)
        return storm

    def test_direct_mode_carries_payloads(self):
        context = RecordingContext(self._storm())
        StorMSearchAgent("k", mode="direct").execute(context)
        (items,) = context.replies
        assert len(items) == 2
        assert all(item.payload is not None for item in items)
        assert len(context.charged) == 1

    def test_metadata_mode_strips_payloads(self):
        context = RecordingContext(self._storm())
        StorMSearchAgent("k", mode="metadata", use_index=True).execute(context)
        (items,) = context.replies
        assert all(item.payload is None for item in items)
        assert all(item.size == 16 for item in items)

    def test_silent_on_no_matches(self):
        context = RecordingContext(self._storm())
        StorMSearchAgent("ghost").execute(context)
        assert context.replies == []


class TestAgentCosts:
    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError):
            AgentCosts(class_install_time=-0.1)
        with pytest.raises(ValueError):
            AgentCosts(object_match_time=-1e-9)
