"""Property battery for the top-k merge operator.

The in-network early termination is only correct if the
:class:`TopKAccumulator` merge behaves like a proper bounded-lattice
join: commutative, associative, idempotent, and invariant under any
partition/permutation of the answer stream — so the accumulated state a
clone carries is independent of which overlay path it travelled.  On
top of that, dominance pruning (an ``add`` returning False) must never
kill an entry that belongs in the true global top-k.  Hypothesis
proves all of it over arbitrary entry streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.agents.topk import TopKAccumulator, TopKEntry
from repro.errors import AgentError
from repro.ids import BPID
from repro.storm.heapfile import RecordId


def _score_of(holder: BPID, rid: RecordId) -> float:
    """A deterministic TF-like score per identity (ratios of small
    integers, like :meth:`StoredObject.score`), so duplicated stream
    entries are *true* duplicates — exactly what floods produce."""
    mix = holder.node_id * 31 + rid.page_id * 7 + rid.slot * 3
    return ((mix % 11) + 1) / 12


def _entry(liglo: str, node_id: int, page: int, slot: int) -> TopKEntry:
    holder = BPID(liglo, node_id)
    rid = RecordId(page, slot)
    return TopKEntry(_score_of(holder, rid), holder, rid)


ENTRIES = st.builds(
    _entry,
    st.sampled_from(["10.0.0.1", "10.0.0.2", "10.0.0.9"]),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=5),
)
STREAMS = st.lists(ENTRIES, min_size=0, max_size=40)
KS = st.integers(min_value=1, max_value=8)


def reference(k, entries):
    """Exhaustive-then-truncate: dedupe, rank globally, keep k."""
    unique = {}
    for entry in entries:
        unique.setdefault((entry.holder, entry.rid), entry)
    return tuple(sorted(unique.values(), key=lambda e: e.sort_key)[:k])


def accumulate(k, entries):
    acc = TopKAccumulator(k)
    acc.merge(entries)
    return acc


class TestMergeAlgebra:
    @settings(max_examples=200, deadline=None)
    @given(k=KS, a=STREAMS, b=STREAMS)
    def test_commutative(self, k, a, b):
        assert accumulate(k, a + b) == accumulate(k, b + a)

    @settings(max_examples=200, deadline=None)
    @given(k=KS, a=STREAMS, b=STREAMS, c=STREAMS)
    def test_associative(self, k, a, b, c):
        left = accumulate(k, a)
        left.merge(accumulate(k, b))
        left.merge(c)
        right = accumulate(k, b)
        right.merge(c)
        folded = accumulate(k, a)
        folded.merge(right)
        assert left == folded

    @settings(max_examples=200, deadline=None)
    @given(k=KS, stream=STREAMS)
    def test_idempotent(self, k, stream):
        once = accumulate(k, stream)
        twice = accumulate(k, stream + stream)
        again = accumulate(k, stream)
        again.merge(once)
        assert once == twice == again

    @settings(max_examples=200, deadline=None)
    @given(
        k=KS,
        stream=STREAMS,
        seed=st.randoms(use_true_random=False),
        cuts=st.lists(st.integers(min_value=0, max_value=40), max_size=5),
    )
    def test_partition_and_permutation_invariant(self, k, stream, seed, cuts):
        shuffled = list(stream)
        seed.shuffle(shuffled)
        bounds = sorted({min(c, len(shuffled)) for c in cuts})
        parts, previous = [], 0
        for bound in bounds + [len(shuffled)]:
            parts.append(shuffled[previous:bound])
            previous = bound
        # Merge each partition independently, then fold the partials —
        # the shape of a flood where clones take different paths.
        partials = [accumulate(k, part) for part in parts]
        folded = TopKAccumulator(k)
        for partial in partials:
            folded.merge(partial)
        assert folded == accumulate(k, stream)

    @settings(max_examples=200, deadline=None)
    @given(k=KS, stream=STREAMS)
    def test_equals_exhaustive_then_truncate(self, k, stream):
        assert accumulate(k, stream).entries == reference(k, stream)

    @settings(max_examples=200, deadline=None)
    @given(k=KS, stream=STREAMS)
    def test_dominance_never_drops_a_true_topk_record(self, k, stream):
        truth = {(e.holder, e.rid) for e in reference(k, stream)}
        acc = TopKAccumulator(k)
        for entry in stream:
            if not acc.add(entry):
                # The hop drops this entry for good: it must not belong
                # in the exhaustive top-k of the *whole* stream.
                assert (entry.holder, entry.rid) not in truth
        assert {(e.holder, e.rid) for e in acc.entries} == truth

    @settings(max_examples=200, deadline=None)
    @given(k=KS, stream=STREAMS)
    def test_threshold_only_tightens(self, k, stream):
        acc = TopKAccumulator(k)
        thresholds = []
        for entry in stream:
            acc.add(entry)
            if acc.threshold is not None:
                thresholds.append(acc.threshold)
        # Tightening = the k-th best score only ever rises.
        assert thresholds == sorted(thresholds)
        assert len(acc) <= k

    @settings(max_examples=200, deadline=None)
    @given(k=KS, stream=STREAMS)
    def test_state_round_trip(self, k, stream):
        acc = accumulate(k, stream)
        clone = TopKAccumulator.from_state(k, acc.as_state())
        assert clone == acc
        assert all(
            isinstance(value, (float, str, int))
            for row in acc.as_state()
            for value in row
        )


class TestAccumulatorBasics:
    def test_bad_k_rejected(self):
        for bad in (0, -1, True, 2.5, None):
            with pytest.raises((AgentError, TypeError)):
                TopKAccumulator(bad)

    def test_entries_best_first(self):
        entries = [_entry("10.0.0.1", n, p, s) for n in range(3) for p in range(2) for s in range(2)]
        acc = accumulate(4, entries)
        keys = [entry.sort_key for entry in acc.entries]
        assert keys == sorted(keys)
        assert len(acc) == 4

    def test_add_reports_membership(self):
        best = TopKEntry(1.0, BPID("10.0.0.1", 1), RecordId(0, 0))
        worse = TopKEntry(0.5, BPID("10.0.0.1", 2), RecordId(0, 1))
        worst = TopKEntry(0.25, BPID("10.0.0.1", 3), RecordId(0, 2))
        acc = TopKAccumulator(2)
        assert acc.add(worse) and acc.add(worst)
        assert acc.threshold == 0.25
        assert acc.add(best)  # displaces the worst
        assert acc.threshold == 0.5
        assert not acc.add(worst)  # now dominated
        assert acc.entries == (best, worse)
