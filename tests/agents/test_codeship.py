"""Tests for code shipping."""

import pytest

from repro.agents.agent import Agent
from repro.agents.codeship import AgentCodeRegistry, extract_source
from repro.errors import CodeShippingError


class SampleAgent(Agent):
    """Module-level agent used to exercise source extraction."""

    def __init__(self, tag):
        self.tag = tag

    def execute(self, context):
        context.charge(0.0)


class TestExtractSource:
    def test_extracts_class_text(self):
        source = extract_source(SampleAgent)
        assert "class SampleAgent(Agent):" in source
        assert "def execute(self, context):" in source

    def test_rejects_non_agent(self):
        with pytest.raises(CodeShippingError):
            extract_source(dict)

    def test_rejects_instance(self):
        with pytest.raises(CodeShippingError):
            extract_source(SampleAgent("x"))


class TestRegistry:
    def test_register_local(self):
        registry = AgentCodeRegistry()
        name = registry.register_local(SampleAgent)
        assert name == "SampleAgent"
        assert registry.has("SampleAgent")
        assert registry.get("SampleAgent") is SampleAgent

    def test_install_executes_source(self):
        sender = AgentCodeRegistry()
        sender.register_local(SampleAgent)
        receiver = AgentCodeRegistry()
        installed = receiver.install("SampleAgent", sender.source_of("SampleAgent"))
        assert installed is not SampleAgent  # a genuinely separate class
        assert issubclass(installed, Agent)
        agent = installed("hello")
        assert agent.tag == "hello"
        assert receiver.installs == 1

    def test_install_idempotent(self):
        sender = AgentCodeRegistry()
        sender.register_local(SampleAgent)
        source = sender.source_of("SampleAgent")
        receiver = AgentCodeRegistry()
        first = receiver.install("SampleAgent", source)
        second = receiver.install("SampleAgent", source)
        assert first is second
        assert receiver.installs == 1

    def test_installed_class_is_reshippable(self):
        """A host that received a class can forward it onwards."""
        origin = AgentCodeRegistry()
        origin.register_local(SampleAgent)
        middle = AgentCodeRegistry()
        installed = middle.install("SampleAgent", origin.source_of("SampleAgent"))
        # extract_source works on the exec'd class via __shipped_source__.
        reshipped = extract_source(installed)
        far = AgentCodeRegistry()
        far.install("SampleAgent", reshipped)
        assert far.has("SampleAgent")

    def test_bad_source_rejected(self):
        registry = AgentCodeRegistry()
        with pytest.raises(CodeShippingError):
            registry.install("Broken", "def ] syntax error")

    def test_source_without_expected_class_rejected(self):
        registry = AgentCodeRegistry()
        with pytest.raises(CodeShippingError):
            registry.install("Missing", "x = 1\n")

    def test_source_with_non_agent_class_rejected(self):
        registry = AgentCodeRegistry()
        with pytest.raises(CodeShippingError):
            registry.install("NotAgent", "class NotAgent:\n    pass\n")

    def test_get_missing_raises(self):
        registry = AgentCodeRegistry()
        with pytest.raises(CodeShippingError):
            registry.get("Nope")
        with pytest.raises(CodeShippingError):
            registry.source_of("Nope")

    def test_class_names(self):
        registry = AgentCodeRegistry()
        registry.register_local(SampleAgent)
        assert registry.class_names == {"SampleAgent"}


class TestAgentState:
    def test_default_state_round_trip(self):
        agent = SampleAgent("payload")
        state = agent.get_state()
        clone = SampleAgent.from_state(state)
        assert clone.tag == "payload"

    def test_state_is_copy(self):
        agent = SampleAgent("x")
        state = agent.get_state()
        state["tag"] = "mutated"
        assert agent.tag == "x"
