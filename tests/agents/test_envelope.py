"""Unit and property tests for agent envelopes."""

from hypothesis import given
from hypothesis import strategies as st

from repro.agents.envelope import (
    DEFAULT_TTL,
    MODE_FLOOD,
    MODE_ITINERARY,
    AgentEnvelope,
)
from repro.ids import BPID, AgentId
from repro.net.address import IPAddress


def make_envelope(ttl=DEFAULT_TTL, hops=0, mode=MODE_FLOOD, path=()):
    origin = BPID("liglo", 0)
    return AgentEnvelope(
        agent_id=AgentId(origin, 0),
        class_name="TestAgent",
        source="class TestAgent(Agent): pass",
        state={"keyword": "jazz"},
        ttl=ttl,
        hops=hops,
        initiator=origin,
        initiator_address=IPAddress("10.0.0.1"),
        mode=mode,
        path=tuple(path),
    )


class TestEnvelope:
    def test_hop_decrements_ttl_increments_hops(self):
        envelope = make_envelope(ttl=5, hops=2)
        hopped = envelope.hop("src")
        assert hopped.ttl == 4
        assert hopped.hops == 3
        assert hopped.source == "src"
        # The original is unchanged (frozen).
        assert envelope.ttl == 5

    def test_expired(self):
        assert not make_envelope(ttl=1).expired
        assert make_envelope(ttl=0).expired
        assert make_envelope(ttl=-1).expired

    def test_with_source_strips_or_adds(self):
        envelope = make_envelope()
        assert envelope.with_source(None).source is None
        assert envelope.with_source("code").source == "code"

    def test_with_state_replaces(self):
        envelope = make_envelope()
        updated = envelope.with_state({"keyword": "rock"})
        assert updated.state == {"keyword": "rock"}
        assert envelope.state == {"keyword": "jazz"}

    def test_advance_path(self):
        a, b = IPAddress("10.0.0.2"), IPAddress("10.0.0.3")
        envelope = make_envelope(mode=MODE_ITINERARY, path=(a, b))
        advanced = envelope.advance_path()
        assert advanced.path == (b,)
        assert advanced.advance_path().path == ()

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=20))
    def test_ttl_plus_hops_invariant(self, ttl, hops):
        """Each hop preserves ttl + hops: the redundancy the paper uses
        to recognize already-seen agents."""
        envelope = make_envelope(ttl=ttl, hops=hops)
        total = envelope.ttl + envelope.hops
        current = envelope
        for _ in range(5):
            current = current.hop(None)
            assert current.ttl + current.hops == total
