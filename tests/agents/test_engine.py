"""Tests for the agent execution engine."""

import pytest

from repro.agents.agent import Agent
from repro.agents.envelope import MODE_ITINERARY
from repro.agents.storm_agent import StorMSearchAgent
from repro.errors import AgentError

from tests.agents.helpers import AgentRig


class CountingAgent(Agent):
    """Counts objects at each host (itinerary-style accumulation)."""

    def __init__(self):
        self.counts = []

    def execute(self, context):
        self.counts.append([str(context.host_id), context.storm.count])


class TestFloodSearch:
    def test_answers_return_directly_to_initiator(self):
        rig = AgentRig()
        a, b, c = rig.line("a", "b", "c")
        b.put_objects("jazz", 3)
        c.put_objects("jazz", 5)
        a.engine.dispatch(StorMSearchAgent("jazz"))
        rig.sim.run()
        assert len(a.answers) == 2
        by_responder = {str(ans.responder): ans.answer_count for ans in a.answers}
        assert by_responder == {str(b.bpid): 3, str(c.bpid): 5}

    def test_answer_hops_reflect_distance(self):
        rig = AgentRig()
        a, b, c = rig.line("a", "b", "c")
        b.put_objects("jazz", 1)
        c.put_objects("jazz", 1)
        a.engine.dispatch(StorMSearchAgent("jazz"))
        rig.sim.run()
        hops = {str(ans.responder): ans.hops for ans in a.answers}
        assert hops == {str(b.bpid): 1, str(c.bpid): 2}

    def test_direct_mode_ships_payloads(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        b.put_objects("jazz", 1, size=64)
        a.engine.dispatch(StorMSearchAgent("jazz", mode="direct"))
        rig.sim.run()
        (answer,) = a.answers
        assert answer.items[0].payload == bytes([0]) * 64

    def test_metadata_mode_omits_payloads(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        b.put_objects("jazz", 1, size=64)
        a.engine.dispatch(StorMSearchAgent("jazz", mode="metadata"))
        rig.sim.run()
        (answer,) = a.answers
        assert answer.items[0].payload is None
        assert answer.items[0].size == 64

    def test_every_host_executes_once_despite_cycles(self):
        rig = AgentRig()
        a = rig.add("a")
        b = rig.add("b")
        c = rig.add("c")
        # Triangle: clones will bounce around; dedup must hold.
        rig.link(a, b)
        rig.link(b, c)
        rig.link(c, a)
        for node in (b, c):
            node.put_objects("k", 1)
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        assert b.engine.agents_executed == 1
        assert c.engine.agents_executed == 1
        assert a.engine.agents_executed == 0  # initiator never re-executes
        assert b.engine.agents_deduped + c.engine.agents_deduped >= 1
        assert len(a.answers) == 2

    def test_ttl_limits_reach(self):
        rig = AgentRig()
        a, b, c, d = rig.line("a", "b", "c", "d")
        for node in (b, c, d):
            node.put_objects("k", 1)
        a.engine.dispatch(StorMSearchAgent("k"), ttl=2)
        rig.sim.run()
        responders = {str(ans.responder) for ans in a.answers}
        # ttl=2: b (hop 1) and c (hop 2) respond; d (hop 3) is unreachable.
        assert responders == {str(b.bpid), str(c.bpid)}

    def test_expired_agent_executes_but_does_not_forward(self):
        rig = AgentRig()
        a, b, c = rig.line("a", "b", "c")
        b.put_objects("k", 1)
        c.put_objects("k", 1)
        a.engine.dispatch(StorMSearchAgent("k"), ttl=1)
        rig.sim.run()
        assert {str(ans.responder) for ans in a.answers} == {str(b.bpid)}
        assert c.engine.agents_executed == 0

    def test_dispatch_validation(self):
        rig = AgentRig()
        a = rig.add("a")
        with pytest.raises(AgentError):
            a.engine.dispatch(StorMSearchAgent("k"), ttl=0)
        with pytest.raises(AgentError):
            a.engine.dispatch(StorMSearchAgent("k"), mode="teleport")
        with pytest.raises(AgentError):
            a.engine.dispatch(StorMSearchAgent("k"), mode=MODE_ITINERARY, path=())


class TestCodeShippingOverWire:
    def test_class_ships_once_per_destination(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        b.put_objects("k", 1)
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        assert b.engine.registry.installs == 1
        first_run_messages = a.host.messages_sent
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        # Second dispatch: same class, no re-install.
        assert b.engine.registry.installs == 1
        assert a.host.messages_sent > first_run_messages

    def test_second_shipment_is_smaller(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        first_bytes = a.host.bytes_sent
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        second_bytes = a.host.bytes_sent - first_bytes
        # State-only envelope must be well below the source-carrying one.
        assert second_bytes < first_bytes * 0.8

    def test_class_miss_triggers_request_round_trip(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        b.put_objects("k", 2)
        # Pretend "b" already has the class so the envelope omits source.
        a.engine.registry.register_local(StorMSearchAgent)
        a.engine._shipped.add((b.host.address, "StorMSearchAgent"))
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        # b detected the miss, requested the class, then executed.
        assert b.engine.registry.installs == 1
        assert b.engine.agents_executed == 1
        assert len(a.answers) == 1
        assert rig.tracer.count("agent", "class-miss") == 1

    def test_class_request_for_unknown_class_is_ignored(self):
        """A class request nobody can serve must not crash the host."""
        rig = AgentRig()
        a, b = rig.line("a", "b")
        from repro.agents.engine import PROTO_CLASS_REQUEST

        a.host.send(b.host.address, PROTO_CLASS_REQUEST, "NeverHeardOfIt")
        rig.sim.run()  # no exception
        assert rig.tracer.count("agent", "class-unavailable") == 1

    def test_forwarded_class_installs_down_the_line(self):
        rig = AgentRig()
        a, b, c = rig.line("a", "b", "c")
        c.put_objects("k", 1)
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        # c got the class from b's forward, not from a.
        assert c.engine.registry.installs == 1
        assert len(a.answers) == 1


class TestTiming:
    def test_install_cost_delays_first_answer(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        b.put_objects("k", 1)
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        first_time = rig.sim.now
        # Re-issue: no install cost now, so it must complete faster.
        start = rig.sim.now
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        second_duration = rig.sim.now - start
        assert second_duration < first_time

    def test_charge_rejects_negative(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")

        class BadAgent(Agent):
            def execute(self, context):
                context.charge(-1.0)

        a.engine.dispatch(BadAgent())
        with pytest.raises(AgentError):
            rig.sim.run()


class TestFloodingConcurrency:
    def test_forwarding_is_not_blocked_by_slow_local_search(self):
        """Clones forward *before* local execution: a slow middle node
        must not delay the far node's answer by its own search time."""
        from repro.agents.agent import Agent

        class SlowAgent(Agent):
            def __init__(self, keyword):
                self.keyword = keyword

            def execute(self, context):
                from repro.agents.messages import AnswerItem

                result = context.storm.search_scan(self.keyword)
                context.charge(1.0)  # a full second of local work
                items = [
                    AnswerItem(rid=rid, keywords=obj.keywords, size=obj.size)
                    for rid, obj in result.matches
                ]
                if items:
                    context.reply(items)

        rig = AgentRig()
        a, b, c = rig.line("a", "b", "c")
        b.put_objects("k", 1)
        c.put_objects("k", 1)
        a.engine.dispatch(SlowAgent("k"))
        rig.sim.run()
        arrival_by_responder = {}
        for answer in a.answers:
            arrival_by_responder[str(answer.responder)] = answer.hops
        assert len(a.answers) == 2
        # c (2 hops) answered well before b's 1s charge would allow if
        # forwarding had waited: both answers land just after t=1.
        assert rig.sim.now < 1.5


class TestItinerary:
    def test_agent_travels_path_and_returns_home(self):
        rig = AgentRig()
        a, b, c = rig.line("a", "b", "c")
        b.put_objects("x", 4)
        c.put_objects("x", 7)
        homecomings = []
        a.engine.on_agent_home = lambda agent_id, state: homecomings.append(state)
        a.engine.dispatch(
            CountingAgent(),
            mode=MODE_ITINERARY,
            path=[b.host.address, c.host.address],
        )
        rig.sim.run()
        (state,) = homecomings
        assert state["counts"] == [[str(b.bpid), 4], [str(c.bpid), 7]]

    def test_itinerary_respects_ttl(self):
        rig = AgentRig()
        a, b, c = rig.line("a", "b", "c")
        homecomings = []
        a.engine.on_agent_home = lambda agent_id, state: homecomings.append(state)
        a.engine.dispatch(
            CountingAgent(),
            mode=MODE_ITINERARY,
            ttl=1,
            path=[b.host.address, c.host.address],
        )
        rig.sim.run()
        (state,) = homecomings
        # TTL 1: only the first stop executed before the agent expired.
        assert len(state["counts"]) == 1
        assert c.engine.agents_executed == 0


class TestChurnDuringExecution:
    def test_outputs_lost_if_host_goes_offline(self):
        rig = AgentRig()
        a, b = rig.line("a", "b")
        b.put_objects("k", 1)
        a.engine.dispatch(StorMSearchAgent("k"))
        # Knock b offline before its service time elapses.
        rig.sim.schedule(0.001, b.host.disconnect)
        rig.sim.run()
        assert a.answers == []
