"""The agent-path caches must save wall-clock and change nothing else.

Battery for the process-wide source and compile caches in
``repro.agents.codeship``: round-trip shipping hits the compile cache,
differing source misses it, ``__shipped_source__`` survives re-shipping,
and every simulated quantity (per-host ``installs``, charged install
costs, completion times, wire bytes) is identical with the caches on or
off (``REPRO_NO_AGENT_CACHE=1``).
"""

import pytest

from repro.agents import codeship
from repro.agents.agent import Agent
from repro.agents.codeship import AgentCodeRegistry, extract_source
from repro.agents.storm_agent import StorMSearchAgent
from repro.errors import CodeShippingError

from tests.agents.helpers import AgentRig


class EchoAgent(Agent):
    """Module-level agent the cache tests ship around."""

    def __init__(self, tag):
        self.tag = tag

    def execute(self, context):
        context.charge(0.0)


#: A second source that defines the *same* class name differently.
VARIANT_SOURCE = (
    "class EchoAgent(Agent):\n"
    "    def __init__(self, tag):\n"
    "        self.tag = ('variant', tag)\n"
    "\n"
    "    def execute(self, context):\n"
    "        context.charge(0.0)\n"
)


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts with cold process-wide caches."""
    codeship.clear_caches()
    yield
    codeship.clear_caches()


def _shipped_source() -> str:
    origin = AgentCodeRegistry()
    origin.register_local(EchoAgent)
    return origin.source_of("EchoAgent")


class TestCompileCache:
    def test_same_class_shipped_twice_hits_cache(self):
        source = _shipped_source()
        first = AgentCodeRegistry()
        second = AgentCodeRegistry()
        installed_first = first.install("EchoAgent", source)
        assert codeship.cache_stats()["compile_cache_misses"] == 1
        installed_second = second.install("EchoAgent", source)
        stats = codeship.cache_stats()
        assert stats["compile_cache_hits"] == 1
        assert stats["compile_cache_misses"] == 1
        # The cached class object is rebound, not re-exec'd...
        assert installed_second is installed_first
        # ...but each registry still counts its own install.
        assert first.installs == 1
        assert second.installs == 1

    def test_cache_never_returns_the_local_original(self):
        """register_local must not seed the compile cache: shipped source
        always yields a class distinct from the sender's original."""
        source = _shipped_source()
        receiver = AgentCodeRegistry()
        installed = receiver.install("EchoAgent", source)
        assert installed is not EchoAgent
        assert issubclass(installed, Agent)

    def test_differing_source_same_name_misses(self):
        source = _shipped_source()
        a = AgentCodeRegistry()
        b = AgentCodeRegistry()
        genuine = a.install("EchoAgent", source)
        variant = b.install("EchoAgent", VARIANT_SOURCE)
        stats = codeship.cache_stats()
        assert stats["compile_cache_hits"] == 0
        assert stats["compile_cache_misses"] == 2
        assert variant is not genuine
        assert variant("x").tag == ("variant", "x")
        assert genuine("x").tag == "x"

    def test_shipped_source_survives_reshipping_installed_class(self):
        source = _shipped_source()
        middle = AgentCodeRegistry()
        installed = middle.install("EchoAgent", source)
        assert installed.__shipped_source__ == source
        # Re-ship from the middle host: extraction returns the shipped
        # source verbatim, and a far host's install hits the cache.
        reshipped = extract_source(installed)
        assert reshipped == source
        far = AgentCodeRegistry()
        far_class = far.install("EchoAgent", reshipped)
        assert far_class is installed
        assert far_class.__shipped_source__ == source

    def test_bypass_env_var_disables_cache(self, monkeypatch):
        monkeypatch.setenv(codeship.NO_CACHE_ENV_VAR, "1")
        source = _shipped_source()
        a = AgentCodeRegistry()
        b = AgentCodeRegistry()
        first = a.install("EchoAgent", source)
        second = b.install("EchoAgent", source)
        stats = codeship.cache_stats()
        assert stats["compile_cache_hits"] == 0
        assert stats["compile_cache_misses"] == 2
        assert stats["compile_cache_size"] == 0
        assert first is not second  # genuinely re-exec'd
        assert a.installs == b.installs == 1


class TestSourceCache:
    def test_extract_source_caches_per_class(self):
        extract_source(EchoAgent)
        assert codeship.cache_stats()["source_cache_misses"] == 1
        again = extract_source(EchoAgent)
        stats = codeship.cache_stats()
        assert stats["source_cache_hits"] == 1
        assert stats["source_cache_misses"] == 1
        assert again == extract_source(EchoAgent)

    def test_bypass_env_var_disables_source_cache(self, monkeypatch):
        monkeypatch.setenv(codeship.NO_CACHE_ENV_VAR, "1")
        first = extract_source(EchoAgent)
        second = extract_source(EchoAgent)
        stats = codeship.cache_stats()
        assert stats["source_cache_hits"] == 0
        assert stats["source_cache_misses"] == 2
        assert first == second

    def test_shipped_classes_skip_the_cache(self):
        """__shipped_source__ is already O(1); it must not burn entries."""
        source = _shipped_source()
        installed = AgentCodeRegistry().install("EchoAgent", source)
        codeship.clear_caches()
        assert extract_source(installed) == source
        stats = codeship.cache_stats()
        assert stats["source_cache_hits"] == 0
        assert stats["source_cache_misses"] == 0


def _flood_observables(monkeypatch, cache_on: bool):
    """Drive one two-query flood; return every simulated observable."""
    codeship.clear_caches()
    if not cache_on:
        monkeypatch.setenv(codeship.NO_CACHE_ENV_VAR, "1")
    else:
        monkeypatch.delenv(codeship.NO_CACHE_ENV_VAR, raising=False)
    rig = AgentRig()
    a, b, c, d = rig.line("a", "b", "c", "d")
    for node in (b, c, d):
        node.put_objects("k", 2)
    finish_times = []
    for _ in range(2):
        a.engine.dispatch(StorMSearchAgent("k"))
        rig.sim.run()
        finish_times.append(rig.sim.now)
    return {
        "installs": {
            name: node.engine.registry.installs for name, node in rig.nodes.items()
        },
        "executed": {
            name: node.engine.agents_executed for name, node in rig.nodes.items()
        },
        "finish_times": finish_times,
        "answers": sorted(
            (str(ans.responder), ans.hops, ans.answer_count) for ans in a.answers
        ),
        "bytes_sent": {
            name: node.host.bytes_sent for name, node in rig.nodes.items()
        },
        "execute_events": [
            (event.time, event.get("service"))
            for event in rig.tracer.select("agent", "execute")
        ],
    }


def test_installs_and_charged_costs_identical_cache_on_vs_off(monkeypatch):
    """The caches may only change real wall-clock: the ``installs``
    counters, the charged install costs (visible in per-execute service
    times and completion times), and the wire bytes are bit-identical."""
    with_caches = _flood_observables(monkeypatch, cache_on=True)
    without_caches = _flood_observables(monkeypatch, cache_on=False)
    assert with_caches == without_caches


class TestClassNamePropagation:
    """Regression: CodeShippingError keeps the originating class name."""

    def test_dynamic_class_dispatch_keeps_class_name(self):
        # A type()-built (REPL-style) subclass has no retrievable source.
        DynamicAgent = type(
            "DynamicAgent", (Agent,), {"execute": lambda self, context: None}
        )
        rig = AgentRig()
        a, _b = rig.line("a", "b")
        with pytest.raises(CodeShippingError) as excinfo:
            a.engine.dispatch(DynamicAgent())
        assert excinfo.value.class_name == "DynamicAgent"
        assert "DynamicAgent" in str(excinfo.value)
        (event,) = rig.tracer.select("agent", "ship-error")
        assert event.get("klass") == "DynamicAgent"

    def test_registry_errors_carry_class_name(self):
        registry = AgentCodeRegistry()
        for call in (registry.get, registry.source_of):
            with pytest.raises(CodeShippingError) as excinfo:
                call("Ghost")
            assert excinfo.value.class_name == "Ghost"
        with pytest.raises(CodeShippingError) as excinfo:
            registry.install("Broken", "def ] syntax error")
        assert excinfo.value.class_name == "Broken"
        with pytest.raises(CodeShippingError) as excinfo:
            registry.install("Missing", "x = 1\n")
        assert excinfo.value.class_name == "Missing"

    def test_non_agent_extract_carries_class_name(self):
        with pytest.raises(CodeShippingError) as excinfo:
            extract_source(dict)
        assert excinfo.value.class_name == "dict"
