"""Retry/backoff behaviour of the LIGLO client under outages."""

import pytest

from repro.errors import LigloError, LigloUnreachableError
from repro.liglo import LigloClient, LigloServer
from repro.net import Network
from repro.sim import Simulator
from repro.util.retry import RetryPolicy
from repro.util.tracing import Tracer

POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.5, multiplier=2.0, max_delay=4.0, jitter=0.0
)


class Rig:
    def __init__(self, policy=POLICY):
        self.sim = Simulator()
        self.tracer = Tracer(enabled=True)
        self.network = Network(self.sim, tracer=self.tracer)
        host = self.network.create_host("liglo-0")
        self.server = LigloServer(host, check_interval=None, tracer=self.tracer)
        self._count = 0
        self.policy = policy

    def add_client(self):
        host = self.network.create_host(f"node-{self._count}")
        self._count += 1
        client = LigloClient(
            host, timeout=2.0, tracer=self.tracer, retry_policy=self.policy
        )
        return host, client


class TestRegisterRetry:
    def test_retries_through_an_outage(self):
        rig = Rig()
        _, client = rig.add_client()
        # Dark for the first attempt; back before retries run out.
        rig.server.host.suspend()
        rig.sim.schedule(2.5, rig.server.host.resume)
        results = []
        client.register(rig.server.host.address, results.append)
        rig.sim.run()
        (result,) = results
        assert result.accepted
        assert client.retries >= 1
        assert rig.tracer.counter("liglo", "register-retry") == client.retries
        assert client.pending_counts() == {"registers": 0, "resolves": 0, "hints": 0}

    def test_exhaustion_reports_timeout(self):
        rig = Rig()
        _, client = rig.add_client()
        rig.server.host.suspend()  # dark forever
        results = []
        client.register(rig.server.host.address, results.append)
        rig.sim.run()
        (result,) = results
        assert not result.accepted
        assert result.reason == "registration timed out"
        # max_attempts=3 means exactly two re-sends before giving up.
        assert client.retries == 2
        assert client.pending_counts() == {"registers": 0, "resolves": 0, "hints": 0}

    def test_no_policy_is_single_shot(self):
        rig = Rig(policy=None)
        _, client = rig.add_client()
        rig.server.host.suspend()
        results = []
        client.register(rig.server.host.address, results.append)
        rig.sim.run()
        assert not results[0].accepted
        assert client.retries == 0

    def test_client_offline_mid_retry_fails_cleanly(self):
        rig = Rig()
        host, client = rig.add_client()
        rig.server.host.suspend()
        results = []
        client.register(rig.server.host.address, results.append)
        # The client's own host drops while a retry is pending.
        rig.sim.schedule(2.1, host.disconnect)
        rig.sim.run()
        (result,) = results
        assert not result.accepted
        assert result.reason == "host went offline during retry"


class TestResolveRetry:
    def test_retries_through_an_outage(self):
        rig = Rig()
        _, a = rig.add_client()
        _, b = rig.add_client()
        a.register(rig.server.host.address, lambda r: None)
        b.register(rig.server.host.address, lambda r: None)
        rig.sim.run()
        rig.server.host.suspend()
        rig.sim.schedule(2.5, rig.server.host.resume)
        replies = []
        a.resolve(b.bpid, replies.append)
        rig.sim.run()
        (reply,) = replies
        assert reply is not None
        assert reply.address == b.host.address
        assert rig.tracer.counter("liglo", "resolve-retry") >= 1
        assert a.pending_counts() == {"registers": 0, "resolves": 0, "hints": 0}

    def test_exhaustion_yields_none(self):
        rig = Rig()
        _, a = rig.add_client()
        _, b = rig.add_client()
        a.register(rig.server.host.address, lambda r: None)
        b.register(rig.server.host.address, lambda r: None)
        rig.sim.run()
        rig.server.host.suspend()
        replies = []
        a.resolve(b.bpid, replies.append)
        rig.sim.run()
        assert replies == [None]
        assert a.pending_counts() == {"registers": 0, "resolves": 0, "hints": 0}


class TestAnnounceVerified:
    def _registered_client(self, rig):
        _, client = rig.add_client()
        client.register(rig.server.host.address, lambda r: None)
        rig.sim.run()
        assert client.bpid is not None
        return client

    def test_requires_registration(self):
        rig = Rig()
        _, client = rig.add_client()
        with pytest.raises(LigloError):
            client.announce_verified()

    def test_verifies_on_healthy_network(self):
        rig = Rig()
        client = self._registered_client(rig)
        confirmations = []
        client.announce_verified(on_ok=lambda: confirmations.append(True))
        rig.sim.run()
        assert confirmations == [True]
        assert rig.tracer.count("liglo", "announce-verified") == 1

    def test_verifies_after_outage_ends(self):
        rig = Rig()
        client = self._registered_client(rig)
        rig.server.host.suspend()
        rig.sim.schedule(2.5, rig.server.host.resume)
        confirmations = []
        client.announce_verified(on_ok=lambda: confirmations.append(True))
        rig.sim.run()
        assert confirmations == [True]
        assert rig.tracer.counter("liglo", "announce-retry") >= 1

    def test_exhaustion_surfaces_typed_error(self):
        rig = Rig()
        client = self._registered_client(rig)
        rig.server.host.suspend()
        errors = []
        client.announce_verified(on_failed=errors.append)
        rig.sim.run()
        (error,) = errors
        assert isinstance(error, LigloUnreachableError)
        assert error.attempts == POLICY.max_attempts

    def test_exhaustion_without_handler_aborts_run(self):
        rig = Rig()
        client = self._registered_client(rig)
        rig.server.host.suspend()
        client.announce_verified()
        with pytest.raises(LigloUnreachableError):
            rig.sim.run()


class TestServerStats:
    def test_stats_shape(self):
        rig = Rig()
        self_client_count = 2
        for _ in range(self_client_count):
            _, client = rig.add_client()
            client.register(rig.server.host.address, lambda r: None)
        rig.sim.run()
        stats = rig.server.stats()
        assert stats["members"] == self_client_count
        assert stats["online_members"] == self_client_count
        assert stats["pending_pings"] == 0
        assert stats["ping_timeouts"] == 0
        assert stats["registrations_rejected"] == 0

    def test_ping_timeouts_counted(self):
        sim = Simulator()
        tracer = Tracer(enabled=True)
        network = Network(sim, tracer=tracer)
        server_host = network.create_host("liglo-0")
        server = LigloServer(
            server_host, check_interval=5.0, check_timeout=0.5, tracer=tracer
        )
        node_host = network.create_host("node-0")
        client = LigloClient(node_host, timeout=2.0, tracer=tracer)
        client.register(server_host.address, lambda r: None)
        sim.run()
        node_host.disconnect()  # member goes dark before the next sweep
        sim.run(until=8.0)
        stats = server.stats()
        assert stats["ping_timeouts"] >= 1
        assert stats["pending_pings"] == 0
