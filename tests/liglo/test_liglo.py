"""Tests for LIGLO servers and clients."""

import pytest

from repro.errors import LigloError
from repro.ids import BPID
from repro.liglo import LigloClient, LigloServer
from repro.net import Network
from repro.sim import Simulator
from repro.util.tracing import Tracer


class Rig:
    def __init__(self, servers=1, capacity=None, check_interval=None):
        self.sim = Simulator()
        self.tracer = Tracer()
        self.network = Network(self.sim, tracer=self.tracer)
        self.servers = []
        for i in range(servers):
            host = self.network.create_host(f"liglo-{i}")
            self.servers.append(
                LigloServer(
                    host,
                    capacity=capacity,
                    check_interval=check_interval,
                    check_timeout=0.5,
                    tracer=self.tracer,
                )
            )
        self._node_count = 0

    def add_client(self):
        host = self.network.create_host(f"node-{self._node_count}")
        self._node_count += 1
        return host, LigloClient(host, timeout=2.0, tracer=self.tracer)


class TestRegistration:
    def test_register_assigns_bpid(self):
        rig = Rig()
        _, client = rig.add_client()
        results = []
        client.register(rig.servers[0].host.address, results.append)
        rig.sim.run()
        (result,) = results
        assert result.accepted
        assert result.bpid == BPID(str(rig.servers[0].host.address), 0)
        assert client.bpid == result.bpid
        assert rig.servers[0].member_count() == 1

    def test_bpids_are_sequential_per_server(self):
        rig = Rig()
        bpids = []
        for _ in range(3):
            _, client = rig.add_client()
            client.register(
                rig.servers[0].host.address,
                lambda r: bpids.append(r.bpid),
            )
        rig.sim.run()
        assert sorted(b.node_id for b in bpids) == [0, 1, 2]

    def test_registration_returns_initial_peers(self):
        rig = Rig()
        hosts = []
        for _ in range(4):
            host, client = rig.add_client()
            hosts.append(host)
            client.register(rig.servers[0].host.address, lambda r: None)
            rig.sim.run()
        host, client = rig.add_client()
        results = []
        client.register(rig.servers[0].host.address, results.append)
        rig.sim.run()
        (result,) = results
        assert len(result.peers) == 4
        peer_addresses = {address for _, address in result.peers}
        assert peer_addresses == {h.address for h in hosts}

    def test_initial_peers_capped(self):
        rig = Rig()
        for _ in range(8):
            _, client = rig.add_client()
            client.register(rig.servers[0].host.address, lambda r: None)
            rig.sim.run()
        _, client = rig.add_client()
        results = []
        client.register(rig.servers[0].host.address, results.append)
        rig.sim.run()
        assert len(results[0].peers) == 5  # DEFAULT_INITIAL_PEERS

    def test_capacity_rejection(self):
        rig = Rig(capacity=1)
        _, first = rig.add_client()
        first.register(rig.servers[0].host.address, lambda r: None)
        rig.sim.run()
        _, second = rig.add_client()
        results = []
        second.register(rig.servers[0].host.address, results.append)
        rig.sim.run()
        (result,) = results
        assert not result.accepted
        assert "capacity" in result.reason
        assert rig.servers[0].registrations_rejected == 1

    def test_register_any_falls_through_to_next_server(self):
        rig = Rig(servers=2, capacity=1)
        _, filler = rig.add_client()
        filler.register(rig.servers[0].host.address, lambda r: None)
        rig.sim.run()
        _, client = rig.add_client()
        results = []
        client.register_any(
            [rig.servers[0].host.address, rig.servers[1].host.address],
            results.append,
        )
        rig.sim.run()
        (result,) = results
        assert result.accepted
        assert result.bpid.liglo_id == str(rig.servers[1].host.address)

    def test_register_any_reports_total_failure(self):
        rig = Rig(servers=1, capacity=1)
        _, filler = rig.add_client()
        filler.register(rig.servers[0].host.address, lambda r: None)
        rig.sim.run()
        _, client = rig.add_client()
        results = []
        client.register_any([rig.servers[0].host.address], results.append)
        rig.sim.run()
        assert not results[0].accepted

    def test_register_any_needs_addresses(self):
        rig = Rig()
        _, client = rig.add_client()
        with pytest.raises(LigloError):
            client.register_any([], lambda r: None)

    def test_registration_timeout(self):
        rig = Rig()
        host, client = rig.add_client()
        server_address = rig.servers[0].host.address
        rig.servers[0].host.disconnect()
        results = []
        client.register(server_address, results.append)
        rig.sim.run()
        (result,) = results
        assert not result.accepted
        assert "timed out" in result.reason


class TestResolution:
    def register(self, rig, client):
        results = []
        client.register(rig.servers[0].host.address, results.append)
        rig.sim.run()
        return results[0]

    def test_resolve_finds_current_address(self):
        rig = Rig()
        host_a, client_a = rig.add_client()
        result_a = self.register(rig, client_a)
        _, client_b = rig.add_client()
        self.register(rig, client_b)
        replies = []
        client_b.resolve(result_a.bpid, replies.append)
        rig.sim.run()
        (reply,) = replies
        assert reply.online
        assert reply.address == host_a.address

    def test_resolve_after_ip_change(self):
        """The whole point of LIGLO: find a peer under its new address."""
        rig = Rig()
        host_a, client_a = rig.add_client()
        result_a = self.register(rig, client_a)
        old_address = host_a.address
        host_a.disconnect()
        host_a.connect()
        client_a.announce()
        rig.sim.run()
        assert host_a.address != old_address

        _, client_b = rig.add_client()
        self.register(rig, client_b)
        replies = []
        client_b.resolve(result_a.bpid, replies.append)
        rig.sim.run()
        assert replies[0].address == host_a.address

    def test_resolve_unknown_bpid(self):
        rig = Rig()
        _, client = rig.add_client()
        self.register(rig, client)
        replies = []
        client.resolve(
            BPID(str(rig.servers[0].host.address), 999), replies.append
        )
        rig.sim.run()
        (reply,) = replies
        assert not reply.known
        assert reply.address is None

    def test_resolve_timeout_gives_none(self):
        rig = Rig()
        _, client = rig.add_client()
        result = self.register(rig, client)
        rig.servers[0].host.disconnect()
        replies = []
        client.resolve(result.bpid, replies.append)
        rig.sim.run()
        assert replies == [None]

    def test_announce_requires_registration(self):
        rig = Rig()
        _, client = rig.add_client()
        with pytest.raises(LigloError):
            client.announce()


class TestValidityChecks:
    def test_silent_member_marked_offline(self):
        rig = Rig(check_interval=10.0)
        host, client = rig.add_client()
        results = []
        client.register(rig.servers[0].host.address, results.append)
        rig.sim.run(until=1.0)
        bpid = results[0].bpid
        host.disconnect()
        rig.sim.run(until=20.0)
        entry = rig.servers[0].lookup(bpid)
        assert entry is not None
        assert not entry.online

    def test_responsive_member_stays_online(self):
        rig = Rig(check_interval=10.0)
        _, client = rig.add_client()
        results = []
        client.register(rig.servers[0].host.address, results.append)
        rig.sim.run(until=25.0)
        entry = rig.servers[0].lookup(results[0].bpid)
        assert entry.online

    def test_offline_member_resolves_to_none_until_reannounce(self):
        rig = Rig(check_interval=5.0)
        host, client = rig.add_client()
        results = []
        client.register(rig.servers[0].host.address, results.append)
        rig.sim.run(until=1.0)
        host.disconnect()
        rig.sim.run(until=12.0)

        _, observer = rig.add_client()
        observer.register(rig.servers[0].host.address, lambda r: None)
        replies = []
        observer.resolve(results[0].bpid, replies.append)
        rig.sim.run(until=14.0)
        assert replies[0].online is False
        assert replies[0].address is None

        host.connect()
        client.announce()
        rig.sim.run(until=16.0)
        replies.clear()
        observer.resolve(results[0].bpid, replies.append)
        rig.sim.run(until=18.0)
        assert replies[0].online is True
        assert replies[0].address == host.address


class TestMultiServer:
    def test_same_node_id_different_servers_is_fine(self):
        """"Two nodes can register to two different servers and be
        assigned the same name" - BPIDs stay globally distinct."""
        rig = Rig(servers=2)
        bpids = []
        for server in rig.servers:
            _, client = rig.add_client()
            client.register(server.host.address, lambda r: bpids.append(r.bpid))
        rig.sim.run()
        assert bpids[0].node_id == bpids[1].node_id == 0
        assert bpids[0] != bpids[1]

    def test_server_failure_is_isolated(self):
        """Members of a live LIGLO are unaffected by another's failure."""
        rig = Rig(servers=2)
        _, client_a = rig.add_client()
        results_a = []
        client_a.register(rig.servers[0].host.address, results_a.append)
        _, client_b = rig.add_client()
        results_b = []
        client_b.register(rig.servers[1].host.address, results_b.append)
        rig.sim.run()
        rig.servers[0].host.disconnect()
        # Resolution through server 1 still works.
        replies = []
        client_a.resolve(results_b[0].bpid, replies.append)
        rig.sim.run()
        assert replies[0].online
