"""Tests for the LIGLO keyword hint directory (super-peer routing).

Server side: the directory records publishes, answers queries with the
*online* holders only, and caps replies at ``max_hints``.  Client side:
``fetch_hints`` is single-shot — a silent LIGLO surfaces as ``None`` so
the caller can flood.  End-to-end: a super-peer query reaches the same
answers as a MaxCount flood while putting fewer packets on the wire.
"""

import pytest

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.errors import LigloError
from repro.liglo import LigloClient, LigloServer
from repro.net import Network
from repro.sim import Simulator
from repro.topology.builders import random_graph
from repro.util.tracing import Tracer


class Rig:
    def __init__(self, max_hints=64):
        self.sim = Simulator()
        self.tracer = Tracer()
        self.network = Network(self.sim, tracer=self.tracer)
        host = self.network.create_host("liglo-0")
        self.server = LigloServer(host, max_hints=max_hints, tracer=self.tracer)
        self._node_count = 0

    def add_client(self):
        host = self.network.create_host(f"node-{self._node_count}")
        self._node_count += 1
        client = LigloClient(host, timeout=2.0, tracer=self.tracer)
        client.register(self.server.host.address, lambda result: None)
        self.sim.run()
        assert client.bpid is not None
        return host, client


class TestDirectory:
    def test_publish_records_keywords(self):
        rig = Rig()
        _, client = rig.add_client()
        client.publish_hints(["jazz", "blues"])
        rig.sim.run()
        assert rig.server.hint_index == {
            "jazz": {client.bpid.node_id},
            "blues": {client.bpid.node_id},
        }
        stats = rig.server.stats()
        assert stats["hint_keywords"] == 2
        assert stats["hint_publishes"] == 1

    def test_query_returns_holders_sorted_by_node_id(self):
        rig = Rig()
        clients = [rig.add_client()[1] for _ in range(3)]
        for client in reversed(clients):  # publish order must not matter
            client.publish_hints(["jazz"])
        rig.sim.run()
        replies = []
        clients[0].fetch_hints("jazz", replies.append)
        rig.sim.run()
        (reply,) = replies
        assert [bpid.node_id for bpid, _ in reply.holders] == [0, 1, 2]
        assert [addr for _, addr in reply.holders] == [
            rig.server.members[b.node_id].address for b, _ in reply.holders
        ]

    def test_unknown_keyword_returns_no_holders(self):
        rig = Rig()
        _, client = rig.add_client()
        replies = []
        client.fetch_hints("nosuch", replies.append)
        rig.sim.run()
        assert replies[0].holders == ()

    def test_offline_holders_excluded(self):
        rig = Rig()
        _, holder = rig.add_client()
        _, asker = rig.add_client()
        holder.publish_hints(["jazz"])
        rig.sim.run()
        rig.server.members[holder.bpid.node_id].online = False
        replies = []
        asker.fetch_hints("jazz", replies.append)
        rig.sim.run()
        assert replies[0].holders == ()

    def test_reply_capped_at_max_hints(self):
        rig = Rig(max_hints=2)
        clients = [rig.add_client()[1] for _ in range(4)]
        for client in clients:
            client.publish_hints(["jazz"])
        rig.sim.run()
        replies = []
        clients[0].fetch_hints("jazz", replies.append)
        rig.sim.run()
        assert len(replies[0].holders) == 2
        # Deterministic cap: the lowest node ids win.
        assert [bpid.node_id for bpid, _ in replies[0].holders] == [0, 1]

    def test_publish_from_stranger_ignored(self):
        rig = Rig()
        other = Rig()
        _, stranger = other.add_client()
        # Same wire shape, but this server never registered the BPID.
        from repro.liglo import messages as m

        host = rig.network.create_host("stranger")
        host.send(
            rig.server.host.address,
            m.PROTO_HINT_PUBLISH,
            m.HintPublish(stranger.bpid, ("jazz",)),
        )
        rig.sim.run()
        assert rig.server.hint_index == {}
        assert rig.server.hint_publishes == 0

    def test_publish_refreshes_liveness(self):
        rig = Rig()
        _, client = rig.add_client()
        rig.server.members[client.bpid.node_id].online = False
        client.publish_hints(["jazz"])
        rig.sim.run()
        assert rig.server.members[client.bpid.node_id].online


class TestClient:
    def test_operations_require_registration(self):
        rig = Rig()
        host = rig.network.create_host("unregistered")
        client = LigloClient(host, timeout=2.0, tracer=rig.tracer)
        with pytest.raises(LigloError):
            client.publish_hints(["jazz"])
        with pytest.raises(LigloError):
            client.fetch_hints("jazz", lambda reply: None)

    def test_timeout_surfaces_none(self):
        rig = Rig()
        _, client = rig.add_client()
        rig.server.host.suspend()  # LIGLO outage
        replies = []
        client.fetch_hints("jazz", replies.append, timeout=1.0)
        rig.sim.run()
        assert replies == [None]
        assert client.pending_counts()["hints"] == 0

    def test_single_shot_no_duplicate_callback(self):
        rig = Rig()
        _, client = rig.add_client()
        replies = []
        client.fetch_hints("jazz", replies.append, timeout=5.0)
        rig.sim.run()  # reply arrives, then the expiry timer fires
        assert replies == [()] or [r.holders for r in replies] == [()]
        assert len(replies) == 1


class TestEndToEnd:
    def _run(self, strategy: str):
        config = BestPeerConfig(max_direct_peers=8, ttl=8, strategy=strategy)
        net = build_network(
            8, config=config, topology=random_graph(8, degree=3, seed=1)
        )
        keyword = "jazz"
        for index, node in enumerate(net.nodes[1:], 1):
            node.share([keyword], index.to_bytes(4, "big") * 8)
        net.sim.run()
        handle = net.base.issue_query(keyword, auto_finish_after=2.0)
        net.sim.run()
        return net, handle

    def test_superpeer_matches_flood_recall_with_fewer_packets(self):
        flood_net, flood_handle = self._run("maxcount")
        hint_net, hint_handle = self._run("superpeer")
        assert hint_handle.network_answer_count == flood_handle.network_answer_count
        assert hint_net.network.packets_delivered < flood_net.network.packets_delivered
        assert hint_net.base.hint_queries == 1
        assert hint_net.base.hint_hits == 1
        assert hint_net.base.hint_fallbacks == 0

    def test_empty_directory_falls_back_to_flood(self):
        config = BestPeerConfig(max_direct_peers=8, ttl=8, strategy="superpeer")
        net = build_network(
            6, config=config, topology=random_graph(6, degree=2, seed=0)
        )
        # Nobody shared anything: the directory is empty for every keyword.
        handle = net.base.issue_query("nosuch", auto_finish_after=2.0)
        net.sim.run()
        assert net.base.hint_queries == 1
        assert net.base.hint_fallbacks == 1
        assert handle.network_answer_count == 0

    def test_liglo_outage_falls_back_to_flood(self):
        config = BestPeerConfig(
            max_direct_peers=8, ttl=8, strategy="superpeer", hint_timeout=0.5
        )
        net = build_network(
            6, config=config, topology=random_graph(6, degree=2, seed=0)
        )
        keyword = "jazz"
        for index, node in enumerate(net.nodes[1:], 1):
            node.share([keyword], index.to_bytes(4, "big") * 8)
        net.sim.run()
        net.liglo_servers[0].host.suspend()
        handle = net.base.issue_query(keyword, auto_finish_after=2.0)
        net.sim.run()
        assert net.base.hint_fallbacks == 1
        # The flood still finds every holder the overlay can reach.
        assert handle.network_answer_count == len(net.nodes) - 1
