"""Tests for reconfiguration strategies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.reconfig import (
    MaxCountStrategy,
    MinHopsStrategy,
    PeerObservation,
    RandomReplacementStrategy,
    StaticStrategy,
    make_reconfig_strategy,
)
from repro.errors import BestPeerError
from repro.ids import BPID
from repro.net.address import IPAddress


def obs(n, answers=0, hops=None, current=False):
    return PeerObservation(
        bpid=BPID("liglo", n),
        address=IPAddress(f"10.0.0.{n}"),
        answers=answers,
        hops=hops,
        is_current=current,
    )


class TestMaxCount:
    def test_keeps_top_answerers(self):
        strategy = MaxCountStrategy()
        candidates = [
            obs(1, answers=5, current=True),
            obs(2, answers=0, current=True),
            obs(3, answers=9),
            obs(4, answers=2),
        ]
        selected = strategy.select(candidates, k=2)
        assert [o.bpid.node_id for o in selected] == [3, 1]

    def test_silent_current_peers_displaced(self):
        """The Figure 2 scenario: responders replace silent peers."""
        strategy = MaxCountStrategy()
        candidates = [
            obs(1, answers=0, current=True),  # peer A: nothing
            obs(2, answers=0, current=True),  # peer B: nothing
            obs(3, answers=4),  # peer C: responder
            obs(4, answers=6),  # peer E: responder
        ]
        selected = strategy.select(candidates, k=4)
        assert {o.bpid.node_id for o in selected} == {1, 2, 3, 4}
        selected_small = strategy.select(candidates, k=2)
        assert {o.bpid.node_id for o in selected_small} == {3, 4}

    def test_tie_break_prefers_current(self):
        strategy = MaxCountStrategy()
        candidates = [obs(5, answers=3), obs(2, answers=3, current=True)]
        selected = strategy.select(candidates, k=1)
        assert selected[0].bpid.node_id == 2

    def test_deterministic_tie_break(self):
        strategy = MaxCountStrategy()
        candidates = [obs(3, answers=1), obs(1, answers=1), obs(2, answers=1)]
        first = strategy.select(candidates, k=2)
        second = strategy.select(list(reversed(candidates)), k=2)
        assert [o.bpid for o in first] == [o.bpid for o in second]

    def test_fewer_candidates_than_k(self):
        strategy = MaxCountStrategy()
        selected = strategy.select([obs(1, answers=1)], k=8)
        assert len(selected) == 1


class TestMinHops:
    def test_prefers_larger_hops(self):
        strategy = MinHopsStrategy()
        candidates = [
            obs(1, answers=5, hops=1),
            obs(2, answers=3, hops=4),
            obs(3, answers=1, hops=2),
        ]
        selected = strategy.select(candidates, k=2)
        assert [o.bpid.node_id for o in selected] == [2, 3]

    def test_hops_tie_broken_by_answers(self):
        strategy = MinHopsStrategy()
        candidates = [obs(1, answers=2, hops=3), obs(2, answers=7, hops=3)]
        selected = strategy.select(candidates, k=1)
        assert selected[0].bpid.node_id == 2

    def test_silent_peers_rank_last(self):
        strategy = MinHopsStrategy()
        candidates = [
            obs(1, current=True),  # silent: no hops evidence
            obs(2, answers=1, hops=1),
        ]
        selected = strategy.select(candidates, k=1)
        assert selected[0].bpid.node_id == 2


class TestRandomReplacement:
    def test_deterministic_per_seed(self):
        candidates = [obs(i, answers=i) for i in range(10)]
        a = RandomReplacementStrategy(seed=3).select(candidates, k=4)
        b = RandomReplacementStrategy(seed=3).select(candidates, k=4)
        assert [o.bpid for o in a] == [o.bpid for o in b]

    def test_returns_k(self):
        candidates = [obs(i) for i in range(10)]
        assert len(RandomReplacementStrategy().select(candidates, k=4)) == 4

    def test_small_candidate_set(self):
        candidates = [obs(1), obs(2)]
        assert len(RandomReplacementStrategy().select(candidates, k=5)) == 2


class TestStatic:
    def test_keeps_only_current(self):
        strategy = StaticStrategy()
        candidates = [obs(1, answers=9), obs(2, answers=0, current=True)]
        selected = strategy.select(candidates, k=4)
        assert [o.bpid.node_id for o in selected] == [2]


class TestFactory:
    def test_known_names(self):
        for name in ["maxcount", "minhops", "random", "static"]:
            assert make_reconfig_strategy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(BestPeerError):
            make_reconfig_strategy("oracle")


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=1, max_value=7),
            st.booleans(),
        ),
        max_size=20,
        unique_by=lambda t: t[0],
    ),
    st.integers(min_value=1, max_value=10),
)
def test_strategies_respect_k_and_candidates(entries, k):
    candidates = [
        obs(n, answers=answers, hops=hops, current=current)
        for n, answers, hops, current in entries
    ]
    for name in ["maxcount", "minhops", "random"]:
        strategy = make_reconfig_strategy(name)
        selected = strategy.select(candidates, k)
        assert len(selected) <= k
        assert len({o.bpid for o in selected}) == len(selected)
        assert all(o in candidates for o in selected)
    # MaxCount keeps a maximal set: no unselected candidate strictly
    # beats a selected one on the answer count.
    maxcount = MaxCountStrategy().select(candidates, k)
    if len(maxcount) == k and len(candidates) > k:
        floor = min(o.answers for o in maxcount)
        for candidate in candidates:
            if candidate not in maxcount:
                assert candidate.answers <= floor
