"""Per-peer liveness: suspicion, degradation, and leak-free pending state."""

import pytest

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.core.peers import PeerTable
from repro.core.query import QueryHandle
from repro.errors import LigloUnreachableError
from repro.ids import BPID, QueryId
from repro.net.address import IPAddress
from repro.topology.builders import line, star
from repro.util.retry import RetryPolicy

POLICY = RetryPolicy(
    max_attempts=2, base_delay=0.25, multiplier=2.0, max_delay=1.0, jitter=0.0
)


def bpid(n):
    return BPID("liglo", n)


def addr(n):
    return IPAddress(f"10.0.0.{n}")


class TestPeerTableLiveness:
    def test_becomes_suspect_at_threshold(self):
        table = PeerTable(max_peers=3)
        table.add(bpid(1), addr(1))
        assert not table.note_timeout(bpid(1), threshold=2)
        assert table.note_timeout(bpid(1), threshold=2)  # became suspect NOW
        assert not table.note_timeout(bpid(1), threshold=2)  # already suspect
        assert table.suspect_bpids() == [bpid(1)]

    def test_unknown_peer_ignored(self):
        table = PeerTable(max_peers=3)
        assert not table.note_timeout(bpid(9), threshold=1)

    def test_note_alive_clears_suspicion(self):
        table = PeerTable(max_peers=3)
        table.add(bpid(1), addr(1))
        table.note_timeout(bpid(1), threshold=1)
        assert table.suspect_bpids() == [bpid(1)]
        table.note_alive(bpid(1), now=7.0)
        assert table.suspect_bpids() == []
        assert table.get(bpid(1)).timeouts == 0
        assert table.get(bpid(1)).last_seen == 7.0

    def test_live_views_exclude_suspects(self):
        table = PeerTable(max_peers=3)
        table.add(bpid(1), addr(1))
        table.add(bpid(2), addr(2))
        table.note_timeout(bpid(1), threshold=1)
        assert table.live_addresses() == [addr(2)]
        assert [entry.bpid for entry in table.live_entries()] == [bpid(2)]
        # The full views still contain everything.
        assert len(table.addresses()) == 2

    def test_healthy_live_views_equal_full_views(self):
        table = PeerTable(max_peers=3)
        table.add(bpid(1), addr(1))
        table.add(bpid(2), addr(2))
        assert table.live_addresses() == table.addresses()

    def test_discard_is_silent_for_unknown(self):
        table = PeerTable(max_peers=3)
        table.add(bpid(1), addr(1))
        table.discard(bpid(1))
        table.discard(bpid(1))
        assert bpid(1) not in table


class TestQueryDegradation:
    def test_mark_degraded_counts_causes(self):
        handle = QueryHandle(QueryId(bpid(0), 0), "k", issued_at=0.0)
        assert not handle.degraded
        handle.mark_degraded("data-timeout")
        handle.mark_degraded("data-timeout")
        handle.mark_degraded("suspect-peer-skipped")
        assert handle.degraded
        assert handle.drop_causes == {
            "data-timeout": 2,
            "suspect-peer-skipped": 1,
        }


def faulted_network(nodes=4, topology=None, suspect_after=1, **overrides):
    config = BestPeerConfig(
        max_direct_peers=3,
        retry_policy=POLICY,
        suspect_after=suspect_after,
        **overrides,
    )
    return build_network(
        nodes,
        config=config,
        topology=topology if topology is not None else star(nodes),
    )


class TestSuspicionEndToEnd:
    def test_data_timeouts_make_dead_peer_suspect(self):
        # The flood itself is fire-and-forget; suspicion is charged by
        # the request/reply paths.  Ship data requests at every peer and
        # let one die silently.
        net = faulted_network(shipping_policy="always-data")
        for node in net.nodes[1:]:
            node.share(["needle"], b"x" * 16)
        base = net.base
        net.nodes[1].host.disconnect()
        first = base.smart_query("needle")
        net.sim.run()
        assert net.nodes[1].bpid in base.peers.suspect_bpids()
        assert first.degraded
        assert first.drop_causes.get("data-timeout", 0) >= 1
        # Live peers still answered: partial results, not none.
        assert first.network_answer_count == 2

    def test_next_query_skips_the_suspect(self):
        net = faulted_network(shipping_policy="always-data")
        for node in net.nodes[1:]:
            node.share(["needle"], b"x" * 16)
        base = net.base
        net.nodes[1].host.disconnect()
        first = base.smart_query("needle")
        net.sim.run()
        sent_before = base.host.messages_sent
        second = base.smart_query("needle")
        net.sim.run()
        assert second.degraded
        assert second.drop_causes.get("suspect-peer-skipped", 0) == 1
        assert second.network_answer_count == 2
        # No packet was wasted on the corpse (2 live data exchanges,
        # answered from cache after the first round).
        assert base.statistics()["request_timeouts"] == first.drop_causes.get(
            "data-timeout"
        ) + POLICY.max_attempts - 1

    def test_reconfigure_evicts_suspects(self):
        # Eviction-and-backfill: the strategy never re-selects a suspect,
        # so finishing a query drops it from the table entirely.
        net = faulted_network()
        base = net.base
        victim = net.nodes[1]
        base.peers.note_timeout(victim.bpid, threshold=1)
        assert base.peers.suspect_bpids() == [victim.bpid]
        handle = base.issue_query("needle", auto_finish_after=1.0)
        net.sim.run()
        assert handle.finished
        assert victim.bpid not in base.peers
        assert base.peers.suspect_bpids() == []

    def test_answer_clears_suspicion_before_reconfigure(self):
        net = faulted_network(shipping_policy="always-data")
        node = net.nodes[1]
        node.share(["needle"], b"x" * 16)
        base = net.base
        base.peers.note_timeout(node.bpid, threshold=1)
        assert base.peers.suspect_bpids() == [node.bpid]
        # The suspect proves it is alive (out of band); it competes again.
        base.peers.note_alive(node.bpid, net.sim.now)
        assert base.peers.suspect_bpids() == []
        handle = base.smart_query("needle")
        net.sim.run()
        assert node.bpid in {a.responder for a in handle.answers}

    def test_healthy_queries_never_degraded(self):
        net = faulted_network()
        for node in net.nodes[1:]:
            node.share(["needle"], b"x" * 16)
        handle = net.base.issue_query("needle", auto_finish_after=2.0)
        net.sim.run()
        assert not handle.degraded
        assert handle.drop_causes == {}
        assert handle.network_answer_count == len(net.nodes) - 1


class TestPendingStateDrains:
    def test_statistics_expose_outstanding_tokens(self):
        net = faulted_network()
        stats = net.base.statistics()
        for key in (
            "pending_fetches",
            "pending_actives",
            "pending_data",
            "pending_liglo",
            "suspect_peers",
            "queries_degraded",
            "request_timeouts",
            "request_retries",
            "liglo_retries",
        ):
            assert key in stats

    def test_fetch_timeout_drains_pending(self):
        net = faulted_network(topology=line(4))
        base = net.base
        ghost = net.nodes[3]
        rid = ghost.share(["needle"], b"payload" * 4)
        ghost.host.disconnect()
        replies = []
        base.fetch(ghost.host.address or addr(9), rid, replies.append)
        net.sim.run()
        assert replies == [None]
        stats = base.statistics()
        assert stats["pending_fetches"] == 0
        assert stats["request_timeouts"] >= 1
        assert stats["request_retries"] >= 1  # the policy re-sent once

    def test_all_pending_state_drains_after_faulted_run(self):
        net = faulted_network()
        for node in net.nodes[1:]:
            node.share(["needle"], b"x" * 16)
        net.nodes[2].host.disconnect()
        handle = net.base.issue_query("needle", auto_finish_after=2.0)
        net.sim.run()
        assert handle.finished
        for node in net.nodes:
            if not node.host.online:
                continue
            stats = node.statistics()
            assert stats["pending_fetches"] == 0
            assert stats["pending_actives"] == 0
            assert stats["pending_data"] == 0
            assert stats["pending_liglo"] == 0


class TestRejoinRetry:
    def test_rejoin_with_dead_liglo_surfaces_typed_error(self):
        net = faulted_network()
        node = net.nodes[1]
        node.leave()
        net.liglo_servers[0].host.suspend()
        errors = []
        node.rejoin(on_failed=errors.append)
        net.sim.run()
        (error,) = errors
        assert isinstance(error, LigloUnreachableError)
        assert error.attempts == POLICY.max_attempts

    def test_rejoin_without_handler_aborts_run(self):
        net = faulted_network()
        node = net.nodes[1]
        node.leave()
        net.liglo_servers[0].host.suspend()
        node.rejoin()
        with pytest.raises(LigloUnreachableError):
            net.sim.run()

    def test_rejoin_succeeds_once_liglo_returns(self):
        net = faulted_network()
        node = net.nodes[1]
        node.leave()
        net.liglo_servers[0].host.suspend()
        net.sim.schedule(1.0, net.liglo_servers[0].host.resume)
        refreshed = []
        node.rejoin(on_refreshed=lambda: refreshed.append(True))
        net.sim.run()
        assert refreshed == [True]
        assert node.host.online

    def test_rejoin_keeps_silent_peers_as_suspects(self):
        # A peer that cannot be resolved during rejoin is kept (the
        # silence may be the LIGLO's fault) but charged a timeout.
        net = faulted_network(suspect_after=1)
        node = net.nodes[1]
        peer_count = len(node.peers)
        assert peer_count >= 1
        victim = net.nodes[0]
        node.leave()
        victim.leave()  # now unresolvable: its LIGLO entry goes offline
        node.rejoin()
        net.sim.run()
        assert len(node.peers) == peer_count  # kept, not dropped


class TestSuspicionReplicationInterplay:
    """Regression: eviction must not make a rejoined peer unplaceable.

    A peer that answered queries, then went silent long enough to be
    suspected, discarded, and backfilled, used to vanish from the
    owner's world entirely — after it rejoined (under a fresh IP, per
    Section 2), no new share could ever select it as a replica holder.
    Two mechanisms combine to fix that: the replication manager keeps a
    bounded last-seen ledger fed by answers (so the peer table
    forgetting the peer does not erase it), and an offer that times out
    against the ledger's stale address is re-sent once to the address
    the peer's registered LIGLO currently reports.
    """

    def test_evicted_and_backfilled_peer_is_rediscoverable_as_holder(self):
        from repro.replication import ReplicationPolicy

        net = faulted_network(
            nodes=4,
            topology=line(4),
            strategy="maxcount",
            replication=ReplicationPolicy(rf=4),
        )
        owner, peer, backfill = net.nodes[1], net.nodes[2], net.nodes[3]

        # The peer proves itself by answering one of the owner's queries,
        # which feeds the replication manager's last-seen ledger.
        peer.share(["kw"], b"proof-of-life")
        net.sim.run()
        handle = owner.issue_query("kw")
        net.sim.run()
        owner.finish_query(handle)
        assert handle.distinct_answer_count == 1

        # Silence: the peer is suspected, evicted, and backfilled.
        assert owner.peers.note_timeout(peer.bpid, threshold=1)
        owner.peers.discard(peer.bpid)
        if backfill.bpid not in owner.peers:
            owner.peers.add(backfill.bpid, backfill.host.address)
        assert peer.bpid not in owner.peers

        # The peer bounces and reconnects under a fresh IP; the owner's
        # table still does not know it, and the ledger address is stale.
        old_address = peer.host.address
        peer.leave()
        peer.rejoin()
        net.sim.run()
        assert peer.bpid not in owner.peers
        assert peer.host.address != old_address

        # A fresh share must still be able to place a copy on it: the
        # stale-address offer times out (one charged timeout), the LIGLO
        # resolve finds the new IP, and the re-offer lands.
        rid = owner.share(["fresh"], b"fresh-content")
        net.sim.run()
        assert owner.request_timeouts["replica"] == 1
        assert peer.bpid in owner.replication.holders_of(rid)
        assert peer.replication.replicas_held >= 1
