"""Tests for offline discovery and the knowledge-based strategy."""

import pytest

from repro.agents.costs import AgentCosts
from repro.core import BestPeerConfig, KnowledgeStrategy, build_network
from repro.core.discovery import ContentReport, KnowledgeBase
from repro.core.reconfig import PeerObservation
from repro.errors import BestPeerError
from repro.ids import BPID
from repro.net.address import IPAddress
from repro.topology import line

FAST = AgentCosts(
    class_install_time=0.005,
    state_install_time=0.001,
    execute_overhead=0.0,
    page_io_time=0.0001,
    object_match_time=0.000001,
)


def report(n, keyword_counts, objects=10, total=1000, hops=1):
    return ContentReport(
        responder=BPID("liglo", n),
        responder_address=IPAddress(f"10.0.0.{n}"),
        hops=hops,
        object_count=objects,
        total_bytes=total,
        keyword_counts=tuple(keyword_counts),
    )


class TestContentReport:
    def test_count_for_normalizes(self):
        r = report(1, [("jazz", 5)])
        assert r.count_for(" JAZZ ") == 5
        assert r.count_for("rock") == 0


class TestKnowledgeBase:
    def test_record_and_query(self):
        kb = KnowledgeBase()
        kb.record(report(1, [("jazz", 5), ("rock", 2)]), now=1.0)
        kb.record(report(2, [("jazz", 1)]), now=2.0)
        assert len(kb) == 2
        assert kb.expected_answers(BPID("liglo", 1), ["jazz"]) == 5
        assert kb.expected_answers(BPID("liglo", 1), ["jazz", "rock"]) == 7
        assert kb.expected_answers(BPID("liglo", 9), ["jazz"]) == 0

    def test_rerecord_overwrites(self):
        kb = KnowledgeBase()
        kb.record(report(1, [("jazz", 5)]), now=1.0)
        kb.record(report(1, [("jazz", 9)]), now=2.0)
        assert kb.expected_answers(BPID("liglo", 1), ["jazz"]) == 9
        assert kb.received_at[BPID("liglo", 1)] == 2.0

    def test_best_providers(self):
        kb = KnowledgeBase()
        kb.record(report(1, [("jazz", 5)]), now=0.0)
        kb.record(report(2, [("jazz", 9)]), now=0.0)
        kb.record(report(3, [("rock", 50)]), now=0.0)
        best = kb.best_providers(["jazz"], k=2)
        assert best == [BPID("liglo", 2), BPID("liglo", 1)]


class TestKnowledgeStrategy:
    def obs(self, n, answers=0, current=False):
        return PeerObservation(
            bpid=BPID("liglo", n),
            address=IPAddress(f"10.0.0.{n}"),
            answers=answers,
            hops=1,
            is_current=current,
        )

    def test_ranks_by_profile_content(self):
        kb = KnowledgeBase()
        kb.record(report(1, [("jazz", 2)]), now=0.0)
        kb.record(report(2, [("jazz", 8)]), now=0.0)
        strategy = KnowledgeStrategy(kb, profile=["jazz"])
        selected = strategy.select([self.obs(1), self.obs(2)], k=1)
        assert selected[0].bpid.node_id == 2

    def test_observed_answers_break_ties(self):
        kb = KnowledgeBase()  # empty: nobody is known
        strategy = KnowledgeStrategy(kb, profile=["jazz"])
        selected = strategy.select(
            [self.obs(1, answers=1), self.obs(2, answers=7)], k=1
        )
        assert selected[0].bpid.node_id == 2

    def test_empty_profile_rejected(self):
        with pytest.raises(BestPeerError):
            KnowledgeStrategy(KnowledgeBase(), profile=[])


class TestDiscoveryEndToEnd:
    def build(self):
        net = build_network(
            4, config=BestPeerConfig(agent_costs=FAST), topology=line(4)
        )
        net.nodes[1].share(["jazz"], b"x" * 100)
        net.nodes[2].share(["jazz"], b"y" * 100)
        net.nodes[2].share(["jazz"], b"z" * 100)
        net.nodes[3].share(["rock"], b"w" * 300)
        return net

    def test_reports_cover_all_reachable_nodes(self):
        net = self.build()
        net.base.discover()
        net.sim.run()
        assert len(net.base.knowledge) == 3
        two = net.base.knowledge.report_for(net.nodes[2].bpid)
        assert two.object_count == 2
        assert two.total_bytes == 200
        assert two.count_for("jazz") == 2

    def test_reports_feed_shipping_estimates(self):
        net = self.build()
        net.base.discover()
        net.sim.run()
        estimate = net.base._estimates[net.nodes[3].bpid]
        assert estimate.store_bytes == 300

    def test_knowledge_guides_reconfiguration(self):
        """Discovery finds the best jazz provider before any query."""
        net = self.build()
        net.base.discover()
        net.sim.run()
        net.base.strategy = KnowledgeStrategy(net.base.knowledge, ["jazz"])
        net.base.config = BestPeerConfig(
            max_direct_peers=1, agent_costs=FAST
        )
        handle = net.base.issue_query("jazz")
        net.sim.run()
        net.base.finish_query(handle)
        # Node 2 (two jazz objects) wins the single peer slot.
        assert net.base.peers.bpids() == [net.nodes[2].bpid]

    def test_discover_requires_join(self):
        from repro.core.node import BestPeerNode
        from repro.net import Network
        from repro.sim import Simulator

        node = BestPeerNode(Network(Simulator()), "loner")
        with pytest.raises(BestPeerError):
            node.discover()
