"""Tests for the peer table."""

import pytest

from repro.core.peers import PeerInfo, PeerTable
from repro.errors import PeerTableError
from repro.ids import BPID
from repro.net.address import IPAddress


def bpid(n):
    return BPID("liglo", n)


def addr(n):
    return IPAddress(f"10.0.0.{n}")


class TestPeerTable:
    def test_add_and_query(self):
        table = PeerTable(max_peers=2)
        table.add(bpid(1), addr(1), now=5.0)
        assert bpid(1) in table
        assert len(table) == 1
        assert table.get(bpid(1)).added_at == 5.0
        assert table.addresses() == [addr(1)]

    def test_capacity_enforced(self):
        table = PeerTable(max_peers=1)
        table.add(bpid(1), addr(1))
        with pytest.raises(PeerTableError):
            table.add(bpid(2), addr(2))

    def test_duplicate_rejected(self):
        table = PeerTable(max_peers=3)
        table.add(bpid(1), addr(1))
        with pytest.raises(PeerTableError):
            table.add(bpid(1), addr(2))

    def test_remove(self):
        table = PeerTable(max_peers=2)
        table.add(bpid(1), addr(1))
        table.remove(bpid(1))
        assert bpid(1) not in table
        with pytest.raises(PeerTableError):
            table.remove(bpid(1))

    def test_replace_all(self):
        table = PeerTable(max_peers=3)
        table.add(bpid(1), addr(1))
        table.replace_all(
            [PeerInfo(bpid(2), addr(2)), PeerInfo(bpid(3), addr(3))]
        )
        assert table.bpids() == [bpid(2), bpid(3)]

    def test_replace_all_capacity(self):
        table = PeerTable(max_peers=1)
        with pytest.raises(PeerTableError):
            table.replace_all([PeerInfo(bpid(1), addr(1)), PeerInfo(bpid(2), addr(2))])

    def test_replace_all_duplicates_rejected(self):
        table = PeerTable(max_peers=3)
        with pytest.raises(PeerTableError):
            table.replace_all([PeerInfo(bpid(1), addr(1)), PeerInfo(bpid(1), addr(2))])

    def test_update_address(self):
        table = PeerTable(max_peers=1)
        table.add(bpid(1), addr(1))
        table.update_address(bpid(1), addr(9))
        assert table.get(bpid(1)).address == addr(9)
        with pytest.raises(PeerTableError):
            table.update_address(bpid(2), addr(2))

    def test_is_full(self):
        table = PeerTable(max_peers=1)
        assert not table.is_full
        table.add(bpid(1), addr(1))
        assert table.is_full

    def test_invalid_capacity(self):
        with pytest.raises(PeerTableError):
            PeerTable(max_peers=0)
