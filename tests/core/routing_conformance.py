"""Reusable conformance battery for routing strategies.

Subclass :class:`StrategyConformance` in a test module and every
strategy registered in :mod:`repro.core.routing` is driven through the
framework's selection and forwarding contracts (the routing analogue of
``tests/net/conformance.py`` for the wire codecs):

* **selection** — at most ``k`` results, no duplicate peers, results
  drawn from the candidate list, stable across fresh same-seed
  instances, and well-behaved on the degenerate inputs (empty set, all
  candidates silent, all candidates current);
* **suspect exclusion** — an observation flagged ``suspect`` (an
  evicted peer the node still has evidence about) is never selected, no
  matter how well it scores;
* **forwarding** — ``flood_targets`` returns a duplicate-free subset of
  the live (non-suspect) peers' addresses and never resurrects a
  suspect peer.

Any future strategy registered by name inherits the whole battery
automatically — the fixture parametrizes over the registry, not a
hand-kept list.
"""

from __future__ import annotations

import pytest

from repro.core.peers import PeerInfo
from repro.core.routing import (
    PeerObservation,
    make_routing_strategy,
    registered_strategies,
)
from repro.ids import BPID
from repro.net.address import IPAddress


def observation(
    n: int,
    answers: int = 0,
    hops: int | None = None,
    current: bool = False,
    suspect: bool = False,
) -> PeerObservation:
    return PeerObservation(
        bpid=BPID("liglo", n),
        address=IPAddress(f"10.0.0.{n}"),
        answers=answers,
        hops=hops,
        is_current=current,
        suspect=suspect,
    )


def peer(n: int, suspect: bool = False) -> PeerInfo:
    return PeerInfo(
        bpid=BPID("liglo", n), address=IPAddress(f"10.0.0.{n}"), suspect=suspect
    )


def mixed_candidates() -> list[PeerObservation]:
    """A spread of answer counts, hops, current flags — no suspects."""
    return [
        observation(1, answers=5, hops=2, current=True),
        observation(2, answers=0, current=True),
        observation(3, answers=9, hops=4),
        observation(4, answers=2, hops=1),
        observation(5, answers=9, hops=1),
        observation(6),
    ]


class StrategyConformance:
    """Mixin: parametrizes every test over all registered strategies."""

    @pytest.fixture(params=sorted(registered_strategies()))
    def name(self, request) -> str:
        return request.param

    @pytest.fixture
    def strategy(self, name):
        return make_routing_strategy(name)

    # -- registry ------------------------------------------------------------

    def test_registered_name_matches_instance(self, name, strategy):
        assert strategy.name == name

    # -- selection -----------------------------------------------------------

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_select_returns_at_most_k(self, strategy, k):
        assert len(strategy.select(mixed_candidates(), k)) <= k

    def test_select_never_duplicates(self, strategy):
        selected = strategy.select(mixed_candidates(), 6)
        assert len({obs.bpid for obs in selected}) == len(selected)

    def test_select_draws_from_candidates(self, strategy):
        candidates = mixed_candidates()
        for obs in strategy.select(candidates, 4):
            assert obs in candidates

    def test_fresh_instances_agree(self, name):
        """Same registered name, same defaults → same selection (the
        parallel runner rebuilds strategies in worker processes)."""
        candidates = mixed_candidates()
        first = make_routing_strategy(name).select(candidates, 3)
        second = make_routing_strategy(name).select(candidates, 3)
        assert [obs.bpid for obs in first] == [obs.bpid for obs in second]

    def test_empty_candidates(self, strategy):
        assert strategy.select([], 4) == []

    def test_all_silent_candidates(self, strategy):
        silent = [observation(n) for n in range(1, 6)]
        selected = strategy.select(silent, 3)
        assert len(selected) <= 3
        assert all(obs in silent for obs in selected)

    def test_all_current_candidates(self, strategy):
        current = [observation(n, answers=n, current=True) for n in range(1, 6)]
        selected = strategy.select(current, 3)
        assert len(selected) <= 3
        assert all(obs.is_current for obs in selected)

    def test_select_for_honours_contract(self, strategy):
        candidates = mixed_candidates()
        selected = strategy.select_for(candidates, 3, keyword="jazz")
        assert len(selected) <= 3
        assert len({obs.bpid for obs in selected}) == len(selected)
        assert all(obs in candidates for obs in selected)

    # -- suspect exclusion ---------------------------------------------------

    def test_never_selects_suspects(self, strategy):
        """A suspect observation loses even with the best score and even
        when k has room for everyone."""
        candidates = [
            observation(1, answers=100, hops=9, current=True, suspect=True),
            observation(2, answers=1, current=True),
            observation(3, answers=2, hops=1),
            observation(4, suspect=True),
        ]
        selected = strategy.select(candidates, 10)
        assert all(not obs.suspect for obs in selected)
        assert {obs.bpid.node_id for obs in selected} <= {2, 3}

    def test_all_suspects_selects_nothing(self, strategy):
        suspects = [observation(n, answers=n, suspect=True) for n in range(1, 5)]
        assert strategy.select(suspects, 4) == []

    # -- forwarding ----------------------------------------------------------

    def test_flood_targets_subset_of_live_peers(self, strategy):
        peers = [peer(1), peer(2, suspect=True), peer(3), peer(4)]
        targets = strategy.flood_targets("jazz", peers)
        live = {p.address for p in peers if not p.suspect}
        assert set(targets) <= live
        assert len(set(targets)) == len(targets)

    def test_flood_targets_skips_suspects(self, strategy):
        peers = [peer(1, suspect=True), peer(2, suspect=True)]
        assert strategy.flood_targets("jazz", peers) == []

    def test_flood_targets_empty_table(self, strategy):
        assert strategy.flood_targets("jazz", []) == []

    def test_flood_targets_accepts_no_keyword(self, strategy):
        """Relays forward without keyword context (the agent clone is
        still in flight); strategies must cope with ``keyword=None``."""
        peers = [peer(1), peer(2)]
        targets = strategy.flood_targets(None, peers)
        assert set(targets) <= {p.address for p in peers}
