"""Integration tests for BestPeerNode."""

import pytest

from repro.agents.costs import AgentCosts
from repro.core import BestPeerConfig, build_network
from repro.errors import AccessDeniedError, BestPeerError
from repro.topology import line, star, tree

FAST = AgentCosts(
    class_install_time=0.005,
    state_install_time=0.001,
    execute_overhead=0.0,
    page_io_time=0.0001,
    object_match_time=0.000001,
)


def small_config(**overrides):
    defaults = dict(max_direct_peers=8, agent_costs=FAST)
    defaults.update(overrides)
    return BestPeerConfig(**defaults)


def fill(node, index, keyword="jazz", count=2):
    for i in range(count):
        node.share([keyword], bytes([index]) * 16)


class TestBuildNetwork:
    def test_all_nodes_join_and_get_bpids(self):
        net = build_network(4, config=small_config())
        assert all(node.joined for node in net.nodes)
        assert len({str(node.bpid) for node in net.nodes}) == 4

    def test_topology_applied(self):
        net = build_network(4, config=small_config(), topology=line(4))
        assert len(net.nodes[0].peers) == 1
        assert len(net.nodes[1].peers) == 2
        assert net.nodes[1].bpid in net.nodes[0].peers

    def test_star_needs_wide_peer_table(self):
        with pytest.raises(Exception):
            build_network(5, config=small_config(max_direct_peers=2), topology=star(5))

    def test_per_node_configs(self):
        configs = [small_config(max_direct_peers=3 + i) for i in range(3)]
        net = build_network(3, config=configs)
        assert [n.config.max_direct_peers for n in net.nodes] == [3, 4, 5]

    def test_without_topology_liglo_supplies_peers(self):
        net = build_network(4, config=small_config())
        # Later joiners receive earlier members as initial peers.
        assert len(net.nodes[3].peers) >= 1

    def test_config_count_mismatch(self):
        with pytest.raises(BestPeerError):
            build_network(3, config=[small_config()] * 2)


class TestQueryFlow:
    def test_query_collects_all_answers_on_line(self):
        net = build_network(4, config=small_config(), topology=line(4))
        net.populate(fill, skip_base=True)
        handle = net.base.issue_query("jazz")
        net.sim.run()
        assert handle.network_answer_count == 6  # 3 nodes x 2 objects
        assert len(handle.responders) == 3

    def test_local_store_searched(self):
        net = build_network(2, config=small_config(), topology=line(2))
        net.base.share(["jazz"], b"local object")
        handle = net.base.issue_query("jazz")
        net.sim.run()
        assert handle.local_result.match_count == 1
        assert handle.total_answer_count == 1

    def test_local_search_disabled(self):
        net = build_network(
            2, config=small_config(search_own_store=False), topology=line(2)
        )
        net.base.share(["jazz"], b"local object")
        handle = net.base.issue_query("jazz")
        net.sim.run()
        assert handle.local_result is None

    def test_answer_arrival_times_monotonic(self):
        net = build_network(6, config=small_config(), topology=line(6))
        net.populate(fill, skip_base=True)
        handle = net.base.issue_query("jazz")
        net.sim.run()
        assert handle.arrival_times == sorted(handle.arrival_times)
        assert handle.completion_time > 0

    def test_on_answer_callback(self):
        net = build_network(3, config=small_config(), topology=line(3))
        net.populate(fill, skip_base=True)
        seen = []
        handle = net.base.issue_query(
            "jazz", on_answer=lambda h, a: seen.append(a.responder)
        )
        net.sim.run()
        assert len(seen) == 2

    def test_auto_finish(self):
        net = build_network(3, config=small_config(), topology=line(3))
        net.populate(fill, skip_base=True)
        finished = []
        handle = net.base.issue_query(
            "jazz",
            auto_finish_after=1.0,
            on_finish=lambda h: finished.append(net.sim.now),
        )
        net.sim.run()
        assert handle.finished
        assert len(finished) == 1

    def test_query_before_join_raises(self):
        from repro.core.node import BestPeerNode
        from repro.net import Network
        from repro.sim import Simulator

        network = Network(Simulator())
        node = BestPeerNode(network, "loner", config=small_config())
        with pytest.raises(BestPeerError):
            node.issue_query("jazz")

    def test_metadata_mode_then_fetch(self):
        net = build_network(
            2, config=small_config(result_mode="metadata"), topology=line(2)
        )
        rid = net.nodes[1].share(["jazz"], b"the payload")
        handle = net.base.issue_query("jazz")
        net.sim.run()
        (answer,) = handle.answers
        item = answer.items[0]
        assert item.payload is None
        fetched = []
        net.base.fetch(answer.responder_address, item.rid, fetched.append)
        net.sim.run()
        assert fetched[0].found
        assert fetched[0].payload == b"the payload"

    def test_fetch_vanished_object(self):
        net = build_network(
            2, config=small_config(result_mode="metadata"), topology=line(2)
        )
        rid = net.nodes[1].share(["jazz"], b"here today")
        handle = net.base.issue_query("jazz")
        net.sim.run()
        (answer,) = handle.answers
        net.nodes[1].storm.delete(answer.items[0].rid)
        fetched = []
        net.base.fetch(answer.responder_address, answer.items[0].rid, fetched.append)
        net.sim.run()
        assert fetched[0].found is False


class TestStatistics:
    def test_counters_after_a_query(self):
        net = build_network(3, config=small_config(), topology=line(3))
        net.populate(fill, skip_base=True)
        handle = net.base.issue_query("jazz")
        net.sim.run()
        stats = net.base.statistics()
        assert stats["queries_issued"] == 1
        assert stats["answers_received"] == 2
        assert stats["messages_sent"] >= 1
        assert stats["direct_peers"] == 1
        assert stats["agents_executed"] == 0  # the base never self-executes
        relay_stats = net.nodes[1].statistics()
        assert relay_stats["agents_executed"] == 1
        assert relay_stats["shared_objects"] == 2


class TestDistinctPayloads:
    def test_replicated_answers_deduplicated(self):
        net = build_network(4, config=small_config(), topology=star(4))
        shared_payload = b"the one true object"
        for node in net.nodes[1:]:
            node.share(["jazz"], shared_payload)  # 3 replicas
            node.share(["jazz"], f"unique-{node.name}".encode())
        handle = net.base.issue_query("jazz")
        net.sim.run()
        assert handle.network_answer_count == 6
        assert handle.distinct_payload_count == 4  # 1 shared + 3 unique

    def test_metadata_answers_count_individually(self):
        net = build_network(
            3, config=small_config(result_mode="metadata"), topology=star(3)
        )
        for node in net.nodes[1:]:
            node.share(["jazz"], b"same bytes")
        handle = net.base.issue_query("jazz")
        net.sim.run()
        # No payloads to compare: each metadata item counts as distinct.
        assert handle.distinct_payload_count == 2


class TestReconfiguration:
    def test_maxcount_brings_answerers_close(self):
        """Figure 2: after a query, answer-bearing far nodes become
        direct peers of the base."""
        net = build_network(
            4, config=small_config(max_direct_peers=2, strategy="maxcount"),
            topology=line(4),
        )
        # Only the far nodes hold matches.
        net.nodes[2].share(["jazz"], b"x")
        net.nodes[3].share(["jazz"], b"y" * 2)
        handle = net.base.issue_query("jazz")
        net.sim.run()
        net.base.finish_query(handle)
        peer_ids = set(net.base.peers.bpids())
        assert peer_ids == {net.nodes[2].bpid, net.nodes[3].bpid}

    def test_static_strategy_never_changes(self):
        net = build_network(
            4, config=small_config(strategy="static"), topology=line(4)
        )
        net.nodes[3].share(["jazz"], b"x")
        before = set(net.base.peers.bpids())
        handle = net.base.issue_query("jazz")
        net.sim.run()
        net.base.finish_query(handle)
        assert set(net.base.peers.bpids()) == before

    def test_second_query_reaches_reconfigured_peers_faster(self):
        net = build_network(
            5, config=small_config(max_direct_peers=2), topology=line(5)
        )
        net.nodes[4].share(["jazz"], b"far away object")
        first = net.base.issue_query("jazz")
        net.sim.run()
        net.base.finish_query(first)
        first_completion = first.completion_time
        second = net.base.issue_query("jazz")
        net.sim.run()
        assert second.completion_time < first_completion

    def test_minhops_prefers_far_nodes(self):
        # Only the base runs MinHops with k=1; relays need room for 2 peers.
        configs = [small_config(max_direct_peers=1, strategy="minhops")] + [
            small_config() for _ in range(3)
        ]
        net = build_network(4, config=configs, topology=line(4))
        net.nodes[1].share(["jazz"], b"near")
        net.nodes[3].share(["jazz"], b"far")
        handle = net.base.issue_query("jazz")
        net.sim.run()
        net.base.finish_query(handle)
        assert net.base.peers.bpids() == [net.nodes[3].bpid]


class TestChurnAndRejoin:
    def test_rejoin_updates_peer_addresses(self):
        net = build_network(3, config=small_config(), topology=line(3))
        middle = net.nodes[1]
        old_address = middle.host.address
        # The middle node churns: leaves, rejoins under a fresh IP.
        middle.leave()
        middle.rejoin()
        net.sim.run()
        assert middle.host.address != old_address
        # Base rejoins too and refreshes peer addresses via LIGLO.
        net.base.leave()
        refreshed = []
        net.base.rejoin(on_refreshed=lambda: refreshed.append(True))
        net.sim.run()
        assert refreshed == [True]
        assert net.base.peers.get(middle.bpid).address == middle.host.address

    def test_rejoin_drops_offline_peers(self):
        net = build_network(
            3, config=small_config(), topology=line(3), liglo_check_interval=2.0
        )
        middle = net.nodes[1]
        middle.leave()
        net.sim.run(until=net.sim.now + 10.0)  # validity check marks it offline
        net.base.leave()
        net.base.rejoin()
        net.sim.run()
        assert middle.bpid not in net.base.peers

    def test_query_still_works_after_churn_cycle(self):
        net = build_network(3, config=small_config(), topology=line(3))
        net.populate(fill, skip_base=True)
        net.nodes[1].leave()
        net.nodes[1].rejoin()
        net.sim.run()
        net.base.rejoin_peers = None  # base never left; addresses refreshed below
        net.base.leave()
        net.base.rejoin()
        net.sim.run()
        handle = net.base.issue_query("jazz")
        net.sim.run()
        assert len(handle.responders) == 2


class TestActiveObjects:
    def test_guard_filters_by_credential(self):
        net = build_network(2, config=small_config(), topology=line(2))
        owner, requester = net.nodes[1], net.nodes[0]

        def element(requester_bpid, credential, data):
            if credential == "secret":
                return data
            if credential == "public":
                return data.split(b"|")[0]
            raise AccessDeniedError(f"credential {credential!r} not recognized")

        owner.share_active("report", b"public part|secret part", element)
        replies = []
        requester.request_active(
            owner.host.address, "report", "public", replies.append
        )
        requester.request_active(
            owner.host.address, "report", "secret", replies.append
        )
        requester.request_active(
            owner.host.address, "report", "wrong", replies.append
        )
        net.sim.run()
        by_content = {r.content for r in replies if r.granted}
        assert by_content == {b"public part", b"public part|secret part"}
        denied = [r for r in replies if not r.granted]
        assert len(denied) == 1
        assert "not recognized" in denied[0].reason

    def test_missing_active_object(self):
        net = build_network(2, config=small_config(), topology=line(2))
        replies = []
        net.base.request_active(
            net.nodes[1].host.address, "ghost", "any", replies.append
        )
        net.sim.run()
        assert replies[0].granted is False
        assert "no such object" in replies[0].reason


class TestComputeSharing:
    def test_custom_agent_runs_at_provider(self):
        """Section 3.2.3: the requester ships the algorithm."""
        from repro.agents.agent import Agent

        class WordCountAgent(Agent):
            def __init__(self, keyword):
                self.keyword = keyword

            def execute(self, context):
                result = context.storm.search_scan(self.keyword)
                context.charge_search(result)
                total = sum(obj.payload.count(b" ") + 1 for _, obj in result.matches)
                from repro.agents.messages import AnswerItem
                from repro.storm.heapfile import RecordId

                context.reply(
                    [
                        AnswerItem(
                            rid=RecordId(0, 0),
                            keywords=(self.keyword,),
                            size=total,
                            payload=None,
                        )
                    ]
                )

        net = build_network(2, config=small_config(), topology=line(2))
        net.nodes[1].share(["text"], b"three word payload")
        net.nodes[1].share(["text"], b"two words")
        collected = []
        from repro.agents.engine import PROTO_ANSWER

        net.base.host.unbind(PROTO_ANSWER)
        net.base.host.bind(
            PROTO_ANSWER, lambda packet: collected.append(packet.payload)
        )
        net.base.dispatch_agent(WordCountAgent("text"))
        net.sim.run()
        (answer,) = collected
        # Only the aggregate (5 words) crossed the network, not the texts.
        assert answer.items[0].size == 5
