"""Routing framework tests: conformance battery + strategy behaviour.

``TestStrategyConformance`` drives every registered strategy through
the shared battery in ``routing_conformance.py``.  The rest of the
module covers what the battery can't: the registry surface, hypothesis
properties (permutation invariance for the paper strategies, history
convergence to a planted hot peer), the new strategies' specific
rankings, and the RandomReplacement RNG-scoping bugfix.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import (
    CostAwareStrategy,
    QueryHistoryStrategy,
    RandomReplacementStrategy,
    RoutingStrategy,
    SuperPeerStrategy,
    make_routing_strategy,
    registered_strategies,
)
from repro.core.routing.base import register_strategy, routing_bypassed
from repro.errors import BestPeerError
from tests.core.routing_conformance import (
    StrategyConformance,
    mixed_candidates,
    observation,
    peer,
)

EXPECTED_STRATEGIES = {
    "maxcount",
    "minhops",
    "random",
    "static",
    "history",
    "superpeer",
    "costaware",
}


class TestStrategyConformance(StrategyConformance):
    """Every registered strategy through the shared battery."""


class TestRegistry:
    def test_all_expected_strategies_registered(self):
        assert set(registered_strategies()) == EXPECTED_STRATEGIES

    def test_factory_builds_each(self):
        for name in EXPECTED_STRATEGIES:
            assert make_routing_strategy(name).name == name

    def test_unknown_name_lists_known(self):
        with pytest.raises(BestPeerError, match="unknown routing strategy"):
            make_routing_strategy("oracle")

    def test_abstract_name_cannot_register(self):
        with pytest.raises(BestPeerError):

            @register_strategy
            class Nameless(RoutingStrategy):
                name = "abstract"

    def test_bypass_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROUTING", raising=False)
        assert not routing_bypassed()
        monkeypatch.setenv("REPRO_ROUTING", "legacy")
        assert routing_bypassed()
        monkeypatch.setenv("REPRO_ROUTING", "strategy")
        assert not routing_bypassed()


# -- hypothesis properties ---------------------------------------------------

observation_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # node id
        st.integers(min_value=0, max_value=20),  # answers
        st.one_of(st.none(), st.integers(min_value=1, max_value=7)),  # hops
        st.booleans(),  # is_current
        st.booleans(),  # suspect
    ),
    max_size=20,
    unique_by=lambda t: t[0],
)


@given(observation_entries, st.integers(min_value=1, max_value=10))
def test_paper_strategies_are_permutation_invariant(entries, k):
    """maxcount/minhops rank by a total order on the observation:
    shuffling the candidate list must not change the selection.  static
    preserves candidate order by design (it *keeps* the current peers),
    so for it only the selected *set* is permutation invariant — and only
    when k has room for every current candidate."""
    candidates = [
        observation(n, answers=a, hops=h, current=c, suspect=s)
        for n, a, h, c, s in entries
    ]
    for name in ["maxcount", "minhops"]:
        forward = make_routing_strategy(name).select(candidates, k)
        backward = make_routing_strategy(name).select(
            list(reversed(candidates)), k
        )
        assert [obs.bpid for obs in forward] == [obs.bpid for obs in backward]
    current = [o for o in candidates if o.is_current and not o.suspect]
    if k >= len(current):
        static = make_routing_strategy("static")
        assert {o.bpid for o in static.select(candidates, k)} == {
            o.bpid for o in static.select(list(reversed(candidates)), k)
        }


@given(observation_entries, st.integers(min_value=1, max_value=10))
def test_every_strategy_respects_k_dedup_and_suspects(entries, k):
    candidates = [
        observation(n, answers=a, hops=h, current=c, suspect=s)
        for n, a, h, c, s in entries
    ]
    for name in registered_strategies():
        selected = make_routing_strategy(name).select(candidates, k)
        assert len(selected) <= k
        assert len({obs.bpid for obs in selected}) == len(selected)
        assert all(obs in candidates for obs in selected)
        assert all(not obs.suspect for obs in selected)


@settings(deadline=None)
@given(
    st.integers(min_value=2, max_value=8),  # peers
    st.integers(min_value=3, max_value=12),  # queries observed
    st.floats(min_value=0.1, max_value=1.0),  # alpha
)
def test_history_converges_to_planted_hot_peer(peers, rounds, alpha):
    """One peer answers every query, the rest never do: after a few
    observations the hot peer must lead both selection and fan-out."""
    strategy = QueryHistoryStrategy(alpha=alpha)
    hot = peers - 1  # deliberately the worst BPID tie-break position
    for _ in range(rounds):
        strategy.observe(
            "jazz",
            [
                observation(n, answers=3 if n == hot else 0)
                for n in range(peers)
            ],
        )
    # Selection with no fresh evidence (all answers 0): history decides.
    ranked = strategy.select_for(
        [observation(n) for n in range(peers)], k=1, keyword="jazz"
    )
    assert ranked[0].bpid.node_id == hot
    # Fan-out visits the hot peer first.
    targets = strategy.flood_targets("jazz", [peer(n) for n in range(peers)])
    assert targets[0] == peer(hot).address


# -- query-history specifics -------------------------------------------------


class TestQueryHistory:
    def test_validates_parameters(self):
        with pytest.raises(BestPeerError):
            QueryHistoryStrategy(alpha=0.0)
        with pytest.raises(BestPeerError):
            QueryHistoryStrategy(alpha=1.5)
        with pytest.raises(BestPeerError):
            QueryHistoryStrategy(fanout=0)

    def test_scores_are_per_keyword(self):
        strategy = QueryHistoryStrategy()
        strategy.observe("jazz", [observation(1, answers=2)])
        assert strategy.score("jazz", observation(1).bpid) == 1.0
        assert strategy.score("blues", observation(1).bpid) == 0.0

    def test_keyword_normalization(self):
        strategy = QueryHistoryStrategy()
        strategy.observe("  Jazz ", [observation(1, answers=1)])
        assert strategy.score("jazz", observation(1).bpid) == 1.0

    def test_ewma_decays_after_misses(self):
        strategy = QueryHistoryStrategy(alpha=0.5)
        strategy.observe("jazz", [observation(1, answers=1)])
        assert strategy.score("jazz", observation(1).bpid) == 1.0
        strategy.observe("jazz", [observation(1, answers=0)])
        assert strategy.score("jazz", observation(1).bpid) == 0.5

    def test_empty_history_reproduces_default_fanout(self):
        strategy = QueryHistoryStrategy()
        peers = [peer(3), peer(1), peer(2, suspect=True), peer(4)]
        assert strategy.flood_targets("jazz", peers) == (
            RoutingStrategy().flood_targets("jazz", peers)
        )

    def test_fanout_caps_targets(self):
        strategy = QueryHistoryStrategy(fanout=2)
        targets = strategy.flood_targets("jazz", [peer(n) for n in range(5)])
        assert len(targets) == 2

    def test_bind_adopts_config_fanout(self):
        strategy = QueryHistoryStrategy()
        node = SimpleNamespace(config=SimpleNamespace(routing_fanout=3))
        strategy.bind(node)
        targets = strategy.flood_targets("jazz", [peer(n) for n in range(6)])
        assert len(targets) == 3


# -- cost-aware specifics ----------------------------------------------------


class TestCostAware:
    def test_validates_smoothing(self):
        with pytest.raises(BestPeerError):
            CostAwareStrategy(smoothing=0.0)

    def test_unbound_degenerates_to_yield_order(self):
        strategy = CostAwareStrategy()
        candidates = [observation(1, answers=2), observation(2, answers=7)]
        assert strategy.select(candidates, 1)[0].bpid.node_id == 2

    def test_cheap_link_wins_at_equal_yield(self):
        strategy = CostAwareStrategy()
        cheap = observation(1, answers=3)
        pricey = observation(2, answers=3)
        strategy._cost_of = (
            lambda address: 0.001 if address == cheap.address else 0.1
        )
        assert strategy.select([pricey, cheap], 1)[0] is cheap

    def test_yield_can_buy_back_an_expensive_link(self):
        strategy = CostAwareStrategy(smoothing=1.0)
        cheap_silent = observation(1, answers=0)
        pricey_loaded = observation(2, answers=99)
        strategy._cost_of = (
            lambda address: 0.001 if address == cheap_silent.address else 0.01
        )
        # (99+1)/0.01 = 10000 > (0+1)/0.001 = 1000
        assert strategy.select([cheap_silent, pricey_loaded], 1)[0] is pricey_loaded


# -- super-peer specifics ----------------------------------------------------


class TestSuperPeer:
    def test_flags_hint_directory(self):
        assert SuperPeerStrategy.uses_hint_directory
        assert not RoutingStrategy.uses_hint_directory

    def test_selection_matches_maxcount(self):
        candidates = mixed_candidates()
        assert [
            obs.bpid for obs in SuperPeerStrategy().select(candidates, 3)
        ] == [
            obs.bpid
            for obs in make_routing_strategy("maxcount").select(candidates, 3)
        ]


# -- RandomReplacement RNG scoping (the bugfix) ------------------------------


class TestRandomRngScoping:
    """Pre-framework, ``random`` seeded ``random.Random(seed)`` directly:
    every node with the default seed shared one global sample sequence,
    and worker processes under ``--jobs`` could diverge from the serial
    run depending on construction order.  The stream now derives from
    ``(seed, "routing", "random", node name)``."""

    def _bound(self, name: str, seed: int = 0) -> RandomReplacementStrategy:
        strategy = RandomReplacementStrategy(seed=seed)
        strategy.bind(SimpleNamespace(name=name))
        return strategy

    def test_same_node_replays_identically(self):
        candidates = [observation(n) for n in range(12)]
        a = [self._bound("node-1").select(candidates, 4) for _ in range(3)]
        b = [self._bound("node-1").select(candidates, 4) for _ in range(3)]
        assert [[o.bpid for o in sel] for sel in a] == [
            [o.bpid for o in sel] for sel in b
        ]

    def test_same_seed_different_nodes_draw_independent_streams(self):
        candidates = [observation(n) for n in range(12)]
        streams = {}
        for name in ["node-1", "node-2", "node-3"]:
            strategy = self._bound(name)
            streams[name] = [
                tuple(o.bpid for o in strategy.select(candidates, 4))
                for _ in range(4)
            ]
        # No two nodes walk the same sequence (seed alone is not the state).
        assert len(set(map(tuple, streams.values()))) == len(streams)

    def test_rebinding_resets_the_stream(self):
        """A worker process reconstructing the node mid-sweep gets the
        same stream the serial run used — bind() re-derives from scratch."""
        candidates = [observation(n) for n in range(12)]
        first = self._bound("node-1")
        first.select(candidates, 4)  # advance the stream
        first.bind(SimpleNamespace(name="node-1"))
        replay = self._bound("node-1")
        assert [o.bpid for o in first.select(candidates, 4)] == [
            o.bpid for o in replay.select(candidates, 4)
        ]

    def test_unbound_instances_with_same_seed_agree(self):
        candidates = [observation(n) for n in range(12)]
        a = RandomReplacementStrategy(seed=7).select(candidates, 4)
        b = RandomReplacementStrategy(seed=7).select(candidates, 4)
        assert [o.bpid for o in a] == [o.bpid for o in b]


# -- config + node wiring ----------------------------------------------------


class TestConfigWiring:
    def test_config_validates_routing_fanout(self):
        from repro.core.config import BestPeerConfig

        with pytest.raises(BestPeerError):
            BestPeerConfig(routing_fanout=0)
        assert BestPeerConfig(routing_fanout=3).routing_fanout == 3

    def test_config_validates_hint_timeout(self):
        from repro.core.config import BestPeerConfig

        with pytest.raises(BestPeerError):
            BestPeerConfig(hint_timeout=0.0)

    def test_builder_strategy_override(self):
        from repro.core.builder import build_network
        from repro.core.config import BestPeerConfig

        net = build_network(
            2, config=BestPeerConfig(strategy="maxcount"), strategy="costaware"
        )
        assert all(node.strategy.name == "costaware" for node in net.nodes)

    def test_costaware_bound_reads_live_link_costs(self):
        from repro.core.builder import build_network
        from repro.net.link import LinkModel

        net = build_network(3, strategy="costaware")
        base = net.base
        near, far = net.nodes[1], net.nodes[2]
        net.network.set_link(
            base.host.address, far.host.address, LinkModel(latency=0.5)
        )
        assert base.strategy.cost(far.host.address) == pytest.approx(0.5)
        assert base.strategy.cost(near.host.address) < 0.5
        # Equal yield: the cheap link wins the only slot.
        from repro.core.routing import PeerObservation

        cheap = PeerObservation(
            bpid=near.liglo.bpid, address=near.host.address, answers=2
        )
        pricey = PeerObservation(
            bpid=far.liglo.bpid, address=far.host.address, answers=2
        )
        selected = base.strategy.select([pricey, cheap], 1)
        assert selected[0] is cheap

    def test_history_fanout_trims_flood(self):
        from repro.core.builder import build_network
        from repro.core.config import BestPeerConfig
        from repro.topology.builders import star

        config = BestPeerConfig(
            max_direct_peers=8, strategy="history", routing_fanout=2
        )
        net = build_network(5, config=config, topology=star(5))
        assert len(net.base._flood_addresses()) == 2

    def test_publish_hints_config_without_superpeer(self):
        from repro.core.builder import build_network
        from repro.core.config import BestPeerConfig

        config = BestPeerConfig(strategy="maxcount", publish_hints=True)
        net = build_network(3, config=config)
        net.nodes[1].share(["jazz"], b"payload")
        net.sim.run()
        assert net.liglo_servers[0].hint_index.get("jazz") == {
            net.nodes[1].liglo.bpid.node_id
        }
        # Re-sharing the same keyword publishes nothing new.
        before = net.liglo_servers[0].hint_publishes
        net.nodes[1].share(["jazz"], b"other payload")
        net.sim.run()
        assert net.liglo_servers[0].hint_publishes == before
