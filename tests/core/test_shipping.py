"""Tests for the code-shipping vs data-shipping decision."""

import pytest

from repro.agents.costs import AgentCosts
from repro.core import BestPeerConfig, build_network
from repro.core.shipping import (
    CODE,
    DATA,
    AdaptiveShippingPolicy,
    AlwaysCodePolicy,
    AlwaysDataPolicy,
    PeerEstimate,
    make_shipping_policy,
)
from repro.errors import BestPeerError
from repro.topology import star

FAST = AgentCosts(
    class_install_time=0.005,
    state_install_time=0.001,
    execute_overhead=0.0,
    page_io_time=0.0001,
    object_match_time=0.000001,
)


class TestPolicies:
    def test_always_code(self):
        policy = AlwaysCodePolicy()
        assert policy.choose(PeerEstimate(store_bytes=1)) == CODE
        assert policy.choose(PeerEstimate(cached=True)) == CODE

    def test_always_data(self):
        assert AlwaysDataPolicy().choose(PeerEstimate()) == DATA

    def test_adaptive_prefers_code_when_store_unknown(self):
        policy = AdaptiveShippingPolicy()
        assert policy.choose(PeerEstimate(store_bytes=0)) == CODE

    def test_adaptive_prefers_cache(self):
        policy = AdaptiveShippingPolicy()
        assert policy.choose(PeerEstimate(store_bytes=10**9, cached=True)) == DATA

    def test_adaptive_small_store_ships_data(self):
        policy = AdaptiveShippingPolicy(horizon=10)
        small = PeerEstimate(store_bytes=1000)
        assert policy.choose(small) == DATA

    def test_adaptive_huge_store_ships_code(self):
        policy = AdaptiveShippingPolicy(horizon=10)
        huge = PeerEstimate(store_bytes=10**9)
        assert policy.choose(huge) == CODE

    def test_adaptive_threshold_scales_with_horizon(self):
        estimate = PeerEstimate(store_bytes=500_000)
        short = AdaptiveShippingPolicy(horizon=1)
        long = AdaptiveShippingPolicy(horizon=100)
        assert short.choose(estimate) == CODE
        assert long.choose(estimate) == DATA

    def test_validation(self):
        with pytest.raises(BestPeerError):
            AdaptiveShippingPolicy(horizon=0)
        with pytest.raises(BestPeerError):
            AdaptiveShippingPolicy(bandwidth=0)

    def test_factory(self):
        for name in ["always-code", "always-data", "adaptive"]:
            assert make_shipping_policy(name).name == name
        with pytest.raises(BestPeerError):
            make_shipping_policy("teleport")


def build(policy, nodes=3):
    config = BestPeerConfig(agent_costs=FAST, shipping_policy=policy)
    net = build_network(nodes, config=config, topology=star(nodes))
    for index, node in enumerate(net.nodes[1:], start=1):
        for i in range(4):
            node.share(["jazz"], bytes([index, i]) * 32)
    return net


class TestSmartQuery:
    def test_code_path_matches_flood_results(self):
        net = build("always-code")
        handle = net.base.smart_query("jazz")
        net.sim.run()
        assert handle.network_answer_count == 8
        assert len(handle.responders) == 2

    def test_data_path_fetches_then_answers(self):
        net = build("always-data")
        handle = net.base.smart_query("jazz")
        net.sim.run()
        assert handle.network_answer_count == 8
        for bpid in [n.bpid for n in net.nodes[1:]]:
            assert net.base.has_cached_data(bpid)

    def test_second_data_query_served_from_cache(self):
        net = build("always-data")
        first = net.base.smart_query("jazz")
        net.sim.run()
        messages_after_first = net.base.host.messages_sent
        second = net.base.smart_query("jazz")
        net.sim.run()
        # No new data requests: answers came from the local mirrors.
        assert net.base.host.messages_sent == messages_after_first
        assert second.network_answer_count == first.network_answer_count

    def test_cached_answers_marked_zero_hops(self):
        net = build("always-data")
        first = net.base.smart_query("jazz")
        net.sim.run()
        second = net.base.smart_query("jazz")
        net.sim.run()
        assert all(a.hops == 0 for a in second.answers)

    def test_cache_invalidation_forces_refetch(self):
        net = build("always-data")
        net.base.smart_query("jazz")
        net.sim.run()
        victim = net.nodes[1].bpid
        net.base.invalidate_data_cache(victim)
        assert not net.base.has_cached_data(victim)
        handle = net.base.smart_query("jazz")
        net.sim.run()
        assert net.base.has_cached_data(victim)
        assert handle.network_answer_count == 8

    def test_invalidate_all(self):
        net = build("always-data")
        net.base.smart_query("jazz")
        net.sim.run()
        net.base.invalidate_data_cache()
        assert not any(
            net.base.has_cached_data(n.bpid) for n in net.nodes[1:]
        )

    def test_adaptive_uses_recorded_store_sizes(self):
        net = build("adaptive")
        small_peer, big_peer = net.nodes[1], net.nodes[2]
        net.base.record_store_size(small_peer.bpid, 1_000)
        net.base.record_store_size(big_peer.bpid, 10**9)
        handle = net.base.smart_query("jazz")
        net.sim.run()
        assert handle.network_answer_count == 8
        # The tiny store was mirrored; the huge one was visited by agent.
        assert net.base.has_cached_data(small_peer.bpid)
        assert not net.base.has_cached_data(big_peer.bpid)

    def test_amortization_beats_repeated_code_shipping(self):
        """The point of the optimizer: repeated queries over a small
        store are cheaper with one data transfer than N agent trips."""
        def run(policy, queries=5):
            net = build(policy)
            elapsed = 0.0
            for _ in range(queries):
                start = net.sim.now
                handle = net.base.smart_query("jazz")
                net.sim.run()
                elapsed += (handle.last_arrival or net.sim.now) - start
            return elapsed

        assert run("always-data") < run("always-code")
