"""Tests for the network builder."""

import pytest

from repro.agents.costs import AgentCosts
from repro.core import BestPeerConfig, build_network
from repro.core.builder import BestPeerNetwork
from repro.errors import BestPeerError
from repro.topology import line, ring
from repro.util.compression import IdentityCodec
from repro.util.tracing import Tracer

FAST = AgentCosts(
    class_install_time=0.002,
    state_install_time=0.001,
    execute_overhead=0.0,
    page_io_time=0.0,
    object_match_time=0.0,
)


def config(**overrides):
    defaults = dict(agent_costs=FAST)
    defaults.update(overrides)
    return BestPeerConfig(**defaults)


class TestBuildValidation:
    def test_zero_nodes_rejected(self):
        with pytest.raises(BestPeerError):
            build_network(0)

    def test_zero_liglos_rejected(self):
        with pytest.raises(BestPeerError):
            build_network(2, liglo_count=0)

    def test_topology_size_mismatch(self):
        with pytest.raises(BestPeerError):
            build_network(3, topology=line(4))

    def test_liglo_round_robin(self):
        net = build_network(6, config=config(), liglo_count=2)
        by_server = {}
        for node in net.nodes:
            by_server.setdefault(node.bpid.liglo_id, []).append(node)
        assert sorted(len(v) for v in by_server.values()) == [3, 3]

    def test_custom_codec_threaded_through(self):
        net = build_network(
            2, config=config(), topology=line(2), codec=IdentityCodec()
        )
        assert net.network.codec.name == "identity"

    def test_tracer_threaded_through(self):
        tracer = Tracer()
        net = build_network(2, config=config(), topology=line(2), tracer=tracer)
        assert tracer.count("liglo", "register") == 2


class TestApplyTopology:
    def test_reapplying_replaces_links(self):
        net = build_network(4, config=config(), topology=line(4))
        assert len(net.nodes[1].peers) == 2
        net.apply_topology(ring(4))
        assert len(net.nodes[0].peers) == 2
        assert net.nodes[3].bpid in net.nodes[0].peers

    def test_size_mismatch_rejected(self):
        net = build_network(4, config=config(), topology=line(4))
        with pytest.raises(BestPeerError):
            net.apply_topology(line(5))

    def test_populate_and_skip_base(self):
        net = build_network(3, config=config(), topology=line(3))
        filled = []
        net.populate(lambda node, index: filled.append(index), skip_base=True)
        assert filled == [1, 2]

    def test_accessors(self):
        net = build_network(3, config=config(), topology=line(3))
        assert isinstance(net, BestPeerNetwork)
        assert net.base is net.nodes[0]
        assert net.node(2) is net.nodes[2]
        assert len(net) == 3
