"""Unit tests for the sharing primitives."""

import pytest

from repro.core.sharing import ActiveObject, ShareCatalog
from repro.errors import AccessDeniedError, SharingError
from repro.ids import BPID


def everyone(requester, credential, data):
    return data


class TestActiveObject:
    def test_render_runs_element(self):
        obj = ActiveObject("doc", b"content", everyone)
        assert obj.render(BPID("l", 1), "any") == b"content"

    def test_element_sees_requester_and_credential(self):
        seen = []

        def element(requester, credential, data):
            seen.append((requester, credential))
            return data

        obj = ActiveObject("doc", b"x", element)
        obj.render(BPID("l", 7), "token")
        assert seen == [(BPID("l", 7), "token")]

    def test_denial_propagates(self):
        def deny(requester, credential, data):
            raise AccessDeniedError("no")

        obj = ActiveObject("doc", b"x", deny)
        with pytest.raises(AccessDeniedError):
            obj.render(BPID("l", 1), "any")

    def test_data_copied(self):
        source = bytearray(b"mutable")
        obj = ActiveObject("doc", source, everyone)
        source[0] = ord("X")
        assert obj.data == b"mutable"

    def test_empty_name_rejected(self):
        with pytest.raises(SharingError):
            ActiveObject("", b"x", everyone)


class TestShareCatalog:
    def test_register_get_unregister(self):
        catalog = ShareCatalog()
        obj = ActiveObject("a", b"x", everyone)
        catalog.register(obj)
        assert catalog.get("a") is obj
        assert catalog.names() == ["a"]
        catalog.unregister("a")
        assert catalog.get("a") is None

    def test_duplicate_rejected(self):
        catalog = ShareCatalog()
        catalog.register(ActiveObject("a", b"x", everyone))
        with pytest.raises(SharingError):
            catalog.register(ActiveObject("a", b"y", everyone))

    def test_unregister_missing_rejected(self):
        with pytest.raises(SharingError):
            ShareCatalog().unregister("ghost")

    def test_names_sorted(self):
        catalog = ShareCatalog()
        for name in ["zebra", "alpha", "mid"]:
            catalog.register(ActiveObject(name, b"", everyone))
        assert catalog.names() == ["alpha", "mid", "zebra"]
