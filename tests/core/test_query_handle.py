"""Unit tests for the query handle lifecycle."""

import pytest

from repro.agents.messages import AnswerItem, AnswerMessage
from repro.core.query import QueryHandle
from repro.errors import QueryError
from repro.ids import BPID, QueryId
from repro.net.address import IPAddress
from repro.storm.heapfile import RecordId


def make_handle(**kwargs):
    return QueryHandle(
        query_id=QueryId(BPID("liglo", 0), 0),
        keyword="jazz",
        issued_at=10.0,
        **kwargs,
    )


def answer(node_id, count=1, hops=1, payload=b"x"):
    items = tuple(
        AnswerItem(rid=RecordId(0, i), keywords=("jazz",), size=len(payload),
                   payload=payload)
        for i in range(count)
    )
    return AnswerMessage(
        query_id=QueryId(BPID("liglo", 0), 0),
        responder=BPID("liglo", node_id),
        responder_address=IPAddress(f"10.0.0.{node_id}"),
        hops=hops,
        items=items,
    )


class TestLifecycle:
    def test_record_and_finish(self):
        handle = make_handle()
        handle.record_answer(answer(1, count=2), now=11.0)
        handle.record_answer(answer(2, count=3), now=12.5)
        assert handle.network_answer_count == 5
        assert handle.completion_time == 2.5
        handle.mark_finished(now=13.0)
        assert handle.finished
        assert handle.finished_at == 13.0

    def test_record_after_finish_raises(self):
        handle = make_handle()
        handle.mark_finished(now=11.0)
        with pytest.raises(QueryError):
            handle.record_answer(answer(1), now=12.0)

    def test_double_finish_raises(self):
        handle = make_handle()
        handle.mark_finished(now=11.0)
        with pytest.raises(QueryError):
            handle.mark_finished(now=12.0)

    def test_callbacks_invoked(self):
        events = []
        handle = make_handle(
            on_answer=lambda h, a: events.append(("answer", a.responder.node_id)),
            on_finish=lambda h: events.append(("finish", None)),
        )
        handle.record_answer(answer(7), now=11.0)
        handle.mark_finished(now=12.0)
        assert events == [("answer", 7), ("finish", None)]

    def test_empty_handle_properties(self):
        handle = make_handle()
        assert handle.completion_time is None
        assert handle.last_arrival is None
        assert handle.responders == set()
        assert handle.network_answer_count == 0
        assert handle.total_answer_count == 0
        assert handle.distinct_payload_count == 0

    def test_answers_by_responder_accumulates(self):
        handle = make_handle()
        handle.record_answer(answer(1, count=2), now=11.0)
        handle.record_answer(answer(1, count=3), now=11.5)
        handle.record_answer(answer(2, count=1), now=12.0)
        by_responder = handle.answers_by_responder()
        assert by_responder[BPID("liglo", 1)] == 5
        assert by_responder[BPID("liglo", 2)] == 1

    def test_arrivals_pairs(self):
        handle = make_handle()
        first = answer(1)
        handle.record_answer(first, now=11.0)
        assert handle.arrivals() == [(11.0, first)]
