"""Tests for topology builders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import grid, line, random_graph, ring, star, tree
from repro.topology.builders import Topology


class TestStar:
    def test_structure(self):
        topology = star(5)
        assert topology.degree(0) == 4
        for i in range(1, 5):
            assert topology.neighbors(i) == [0]
        assert topology.depth == 1

    def test_single_node(self):
        topology = star(1)
        assert topology.edge_count == 0
        assert topology.is_connected()


class TestLine:
    def test_structure(self):
        topology = line(4)
        assert topology.neighbors(0) == [1]
        assert topology.neighbors(1) == [0, 2]
        assert topology.neighbors(3) == [2]
        assert topology.depth == 3

    def test_two_nodes(self):
        assert line(2).edge_count == 1


class TestTree:
    def test_binary_tree(self):
        topology = tree(7, branching=2)
        assert topology.neighbors(0) == [1, 2]
        assert topology.neighbors(1) == [0, 3, 4]
        assert topology.neighbors(3) == [1]
        assert topology.depth == 2

    def test_partial_last_level(self):
        topology = tree(6, branching=2)
        assert topology.is_connected()
        assert topology.degree(2) == 2  # parent + one child (node 5)

    def test_branching_three(self):
        topology = tree(13, branching=3)
        assert topology.degree(0) == 3
        assert topology.depth == 2

    def test_invalid_branching(self):
        with pytest.raises(TopologyError):
            tree(5, branching=0)

    def test_paper_level_5_tree(self):
        """The paper used 48 nodes (not 63) at level 5 of a binary tree."""
        topology = tree(48, branching=2)
        assert topology.is_connected()
        assert topology.depth == 5


class TestRing:
    def test_structure(self):
        topology = ring(5)
        assert all(topology.degree(i) == 2 for i in range(5))
        assert topology.is_connected()

    def test_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)


class TestGrid:
    def test_structure(self):
        topology = grid(2, 3)
        assert topology.node_count == 6
        assert topology.degree(0) == 2  # corner
        assert topology.degree(1) == 3  # edge
        assert topology.is_connected()

    def test_invalid(self):
        with pytest.raises(TopologyError):
            grid(0, 3)


class TestRandomGraph:
    def test_connected_and_deterministic(self):
        a = random_graph(20, degree=3, seed=5)
        b = random_graph(20, degree=3, seed=5)
        assert a.edges == b.edges
        assert a.is_connected()

    def test_different_seeds_differ(self):
        a = random_graph(20, degree=3, seed=1)
        b = random_graph(20, degree=3, seed=2)
        assert a.edges != b.edges

    def test_degree_budget(self):
        topology = random_graph(30, degree=4, seed=0)
        average = 2 * topology.edge_count / topology.node_count
        assert 2.0 <= average <= 4.5

    def test_validation(self):
        with pytest.raises(TopologyError):
            random_graph(1, degree=2)
        with pytest.raises(TopologyError):
            random_graph(10, degree=0)

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=100),
    )
    def test_always_connected(self, nodes, degree, seed):
        assert random_graph(nodes, degree, seed).is_connected()


class TestTopologyValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology("bad", 3, frozenset({(1, 1)}))

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(TopologyError):
            Topology("bad", 3, frozenset({(0, 5)}))

    def test_unnormalized_edge_rejected(self):
        with pytest.raises(TopologyError):
            Topology("bad", 3, frozenset({(2, 1)}))

    def test_bad_base_rejected(self):
        with pytest.raises(TopologyError):
            Topology("bad", 3, frozenset(), base=7)

    def test_disconnected_detected(self):
        topology = Topology("two-islands", 4, frozenset({(0, 1), (2, 3)}))
        assert not topology.is_connected()

    def test_hops_from_base(self):
        topology = line(4)
        assert topology.hops_from_base() == {0: 0, 1: 1, 2: 2, 3: 3}
