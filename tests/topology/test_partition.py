"""Node-to-shard assignment: stability, balance, locality, pinning."""

import pytest

from repro.errors import TopologyError
from repro.topology import assign_shards, line, star, tree
from repro.topology.partition import PARTITION_MODES, _dfs_preorder


class TestHashMode:
    def test_deterministic_across_calls(self):
        first = assign_shards(64, 4)
        second = assign_shards(64, 4)
        assert first == second

    def test_node_zero_pinned_to_shard_zero(self):
        for shards in (2, 3, 4, 7):
            assert assign_shards(50, shards)[0] == 0

    def test_roughly_balanced(self):
        assignment = assign_shards(400, 4)
        counts = [assignment.count(shard) for shard in range(4)]
        # Content hashing is balanced in expectation; no shard should be
        # starved or hoarding at this size.
        assert min(counts) > 400 // 4 // 2
        assert max(counts) < 400 // 4 * 2

    def test_assignment_independent_of_total_when_hashing(self):
        # node i's shard depends only on its name, not the network size.
        small = assign_shards(50, 4)
        large = assign_shards(100, 4)
        assert small[1:] == large[1:50]


class TestLocalityMode:
    def test_line_chunks_are_contiguous(self):
        assignment = assign_shards(12, 3, line(12), mode="locality")
        assert assignment == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]

    def test_tree_keeps_subtrees_together(self):
        topology = tree(13, branching=3)  # root + 3 branches of 4
        assignment = assign_shards(13, 3, topology, mode="locality")
        # A DFS walk visits each branch completely before the next, so
        # each non-root branch must span at most two shards (one cut).
        for branch_root in topology.neighbors(0):
            branch = [branch_root] + [
                node
                for node in range(1, 13)
                if node != branch_root
                and branch_root in _path_to_base(topology, node)
            ]
            shards = {assignment[node] for node in branch}
            assert len(shards) <= 2

    def test_star_leaves_split_into_arcs(self):
        assignment = assign_shards(9, 2, star(9), mode="locality")
        assert assignment[0] == 0
        # Leaves 1..8 form two contiguous arcs of the DFS order.
        leaf_shards = assignment[1:]
        flips = sum(
            1 for a, b in zip(leaf_shards, leaf_shards[1:]) if a != b
        )
        assert flips == 1

    def test_sizes_near_equal(self):
        assignment = assign_shards(14, 4, line(14), mode="locality")
        counts = [assignment.count(shard) for shard in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_falls_back_to_hash_without_topology(self):
        assert assign_shards(20, 2, None, mode="locality") == assign_shards(20, 2)


def _path_to_base(topology, node):
    """Set of ancestors of ``node`` on the BFS tree from the base."""
    hops = topology.hops_from_base()
    path = set()
    current = node
    while hops[current] > 0:
        for neighbor in topology.neighbors(current):
            if hops[neighbor] == hops[current] - 1:
                path.add(neighbor)
                current = neighbor
                break
    return path


class TestValidation:
    def test_single_shard_short_circuits(self):
        assert assign_shards(5, 1) == [0] * 5

    def test_zero_shards_rejected(self):
        with pytest.raises(TopologyError):
            assign_shards(5, 0)

    def test_zero_nodes_rejected(self):
        with pytest.raises(TopologyError):
            assign_shards(0, 2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(TopologyError) as exc:
            assign_shards(5, 2, mode="round-robin")
        assert "round-robin" in str(exc.value)
        assert all(mode in str(exc.value) for mode in PARTITION_MODES)

    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            assign_shards(5, 2, line(6), mode="locality")


class TestDfsPreorder:
    def test_line_walk_is_index_order(self):
        assert _dfs_preorder(line(5)) == [0, 1, 2, 3, 4]

    def test_walk_covers_every_node_once(self):
        topology = tree(13, branching=3)
        order = _dfs_preorder(topology)
        assert sorted(order) == list(range(13))

    def test_smallest_neighbor_explored_first(self):
        order = _dfs_preorder(star(5))
        assert order == [0, 1, 2, 3, 4]
