"""Smoke tests for the ablation experiments at reduced scale."""

import pytest

from repro.eval.ablations import (
    ablation_buffer_strategy,
    ablation_compression,
    ablation_replication,
    ablation_result_mode,
    ablation_shipping,
    ablation_strategy,
    ablation_ttl,
)
from repro.eval.figures import FigureParams

SMALL = FigureParams(objects_per_node=40, corpus_size=10, queries=3)


class TestStrategyAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_strategy(SMALL, node_count=10, holder_count=2)

    def test_all_strategies_present(self, result):
        assert set(result.series) == {"maxcount", "minhops", "random", "static"}

    def test_static_flat_once_classes_are_cached(self, result):
        # Run 1 pays code shipping everywhere (even static); runs 2+ of
        # a static network are indistinguishable.
        static = result.y_values("static")
        assert static[1] == pytest.approx(static[-1], rel=0.1)

    def test_maxcount_improves_after_first_run(self, result):
        maxcount = result.y_values("maxcount")
        assert maxcount[-1] < maxcount[0]

    def test_reconfigurable_beats_static_eventually(self, result):
        assert result.y_values("maxcount")[-1] < result.y_values("static")[-1]


class TestCompressionAblation:
    def test_gzip_no_slower(self):
        result = ablation_compression(SMALL, node_count=7)
        gzip_runs = result.y_values("gzip")
        off_runs = result.y_values("off")
        # Agent source is highly compressible: gzip saves wire time.
        assert sum(gzip_runs) <= sum(off_runs) * 1.02


class TestTtlAblation:
    def test_coverage_grows_with_ttl(self):
        result = ablation_ttl(SMALL, node_count=8, ttls=(2, 4, 8))
        responders = result.y_values("responders")
        assert responders == sorted(responders)
        assert responders[0] == 2  # ttl=2 reaches two hops on a line
        assert responders[-1] == 7  # full coverage

    def test_completion_grows_with_coverage(self):
        result = ablation_ttl(SMALL, node_count=8, ttls=(2, 8))
        completions = result.y_values("completion (s)")
        assert completions[0] < completions[-1]


class TestResultModeAblation:
    def test_metadata_answers_no_slower_to_arrive(self):
        result = ablation_result_mode(SMALL, node_count=7)
        direct = sum(result.y_values("direct"))
        metadata = sum(result.y_values("metadata"))
        assert metadata <= direct * 1.02


class TestReplicationAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_replication(
            SMALL, node_count=10, factors=(1, 4), placement_seeds=3
        )

    def test_series_present(self, result):
        assert set(result.series) == {"first answer (s)", "completion (s)"}

    def test_more_replicas_faster_first_answer(self, result):
        first = result.y_values("first answer (s)")
        assert first[-1] <= first[0]

    def test_all_times_positive(self, result):
        for name in result.series:
            assert all(v > 0 for v in result.y_values(name))


class TestShippingAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_shipping(
            SMALL, node_count=3, query_count=8, store_objects=120
        )

    def test_cumulative_series_monotone(self, result):
        for name in result.series:
            values = result.y_values(name)
            assert values == sorted(values)

    def test_code_cheapest_first_query(self, result):
        assert result.y_values("always-code")[0] < result.y_values("always-data")[0]

    def test_data_amortizes(self, result):
        code = result.y_values("always-code")
        data = result.y_values("always-data")
        # The per-query increments shrink to ~0 once mirrored.
        data_tail_increment = data[-1] - data[-2]
        code_tail_increment = code[-1] - code[-2]
        assert data_tail_increment < code_tail_increment


class TestBufferAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_buffer_strategy(
            objects=300, object_size=512, pool_size=16, scans=3
        )

    def test_all_strategies_present(self, result):
        assert set(result.series) == {"lru", "mru", "fifo", "clock", "lru-k"}

    def test_mru_beats_lru_on_repeated_scans(self, result):
        """The classic sequential-flooding result."""
        lru_steady = result.y_values("lru")[-1]
        mru_steady = result.y_values("mru")[-1]
        assert mru_steady < lru_steady

    def test_scan_costs_positive_and_bounded(self, result):
        # Population already evicts pages differently per strategy, so
        # first-scan costs differ; all must stay within a sane envelope.
        for name in result.series:
            values = result.y_values(name)
            assert all(v > 0 for v in values)
            assert max(values) < 10 * min(values)
