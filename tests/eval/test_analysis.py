"""Tests for series analysis and ASCII plotting."""

import pytest

from repro.errors import ExperimentError
from repro.eval.analysis import (
    crossover,
    dominates,
    growth_factor,
    is_flat,
    is_monotone_decreasing,
    is_monotone_increasing,
    speedup,
    summarize_shapes,
)
from repro.eval.experiment import FigureResult
from repro.eval.plot import render_ascii_plot


def figure(**series):
    result = FigureResult("F", "test", "x", "y")
    for name, points in series.items():
        for x, y in points:
            result.add_point(name, x, y)
    return result


class TestSpeedup:
    def test_pointwise_ratio(self):
        result = figure(slow=[(1, 4.0), (2, 9.0)], fast=[(1, 2.0), (2, 3.0)])
        assert speedup(result, "slow", "fast") == [2.0, 3.0]

    def test_skips_unshared_x(self):
        result = figure(slow=[(1, 4.0), (3, 8.0)], fast=[(1, 2.0)])
        assert speedup(result, "slow", "fast") == [2.0]

    def test_no_shared_x_raises(self):
        result = figure(slow=[(1, 4.0)], fast=[(2, 2.0)])
        with pytest.raises(ExperimentError):
            speedup(result, "slow", "fast")

    def test_zero_denominator_raises(self):
        result = figure(slow=[(1, 4.0)], fast=[(1, 0.0)])
        with pytest.raises(ExperimentError):
            speedup(result, "slow", "fast")


class TestCrossover:
    def test_finds_first_crossing(self):
        result = figure(
            cs=[(1, 1.0), (2, 3.0), (3, 5.0)],
            bp=[(1, 2.0), (2, 2.5), (3, 3.0)],
        )
        # CS is below BP at x=1, crosses at x=2.
        assert crossover(result, "cs", "bp") == 2

    def test_no_crossover(self):
        result = figure(a=[(1, 1.0), (2, 1.0)], b=[(1, 2.0), (2, 2.0)])
        assert crossover(result, "a", "b") is None

    def test_crossed_from_start(self):
        result = figure(a=[(1, 5.0)], b=[(1, 2.0)])
        assert crossover(result, "a", "b") == 1


class TestShapePredicates:
    def test_is_flat(self):
        assert is_flat([1.0, 1.05, 0.99])
        assert not is_flat([1.0, 2.0])
        assert is_flat([0.0, 0.0])
        with pytest.raises(ExperimentError):
            is_flat([])

    def test_monotone(self):
        assert is_monotone_increasing([1, 2, 3])
        assert not is_monotone_increasing([1, 3, 2])
        assert is_monotone_increasing([1, 0.99, 2], slack=0.05)
        assert is_monotone_decreasing([3, 2, 1])
        assert not is_monotone_decreasing([1, 2])

    def test_dominates(self):
        result = figure(bp=[(1, 1.0), (2, 2.0)], gnutella=[(1, 1.5), (2, 2.5)])
        assert dominates(result, "bp", "gnutella")
        assert not dominates(result, "gnutella", "bp")

    def test_growth_factor(self):
        assert growth_factor([2.0, 4.0, 8.0]) == 4.0
        with pytest.raises(ExperimentError):
            growth_factor([1.0])
        with pytest.raises(ExperimentError):
            growth_factor([0.0, 1.0])

    def test_summarize_shapes(self):
        result = figure(a=[(1, 1.0), (2, 4.0)])
        summary = summarize_shapes(result)
        assert summary["a"]["first"] == 1.0
        assert summary["a"]["last"] == 4.0
        assert summary["a"]["growth"] == 4.0
        assert summary["a"]["flat(10%)"] is False


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        result = figure(
            BPR=[(1, 1.0), (2, 2.0), (3, 3.0)],
            CS=[(1, 3.0), (2, 2.0), (3, 1.0)],
        )
        text = render_ascii_plot(result, width=32, height=8)
        assert "A=BPR" in text
        assert "B=CS" in text
        assert "A" in text and "B" in text
        # The crossing point (2, 2.0) is shared: overlap marker.
        assert "*" in text

    def test_single_point_series(self):
        result = figure(only=[(1, 5.0)])
        text = render_ascii_plot(result)
        assert "A=only" in text

    def test_axis_labels_present(self):
        result = figure(a=[(0, 0.0), (10, 100.0)])
        text = render_ascii_plot(result)
        assert "100" in text
        assert "10" in text

    def test_too_small_area_rejected(self):
        result = figure(a=[(1, 1.0)])
        with pytest.raises(ExperimentError):
            render_ascii_plot(result, width=4, height=2)

    def test_empty_figure_rejected(self):
        with pytest.raises(ExperimentError):
            render_ascii_plot(FigureResult("F", "t", "x", "y"))


class TestCliPlotFlag:
    def test_figure_with_plot(self, capsys):
        from repro.cli import main

        code = main(
            ["figure", "5c", "--objects", "20", "--queries", "2", "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legend:" in out
