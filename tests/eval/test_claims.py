"""Tests for the executable paper claims."""

import pytest

from repro.errors import ExperimentError
from repro.eval.claims import CLAIMS, verify_all, verify_figure
from repro.eval.experiment import FigureResult


def figure(**series):
    result = FigureResult("F", "synthetic", "x", "y")
    for name, points in series.items():
        for x, y in points:
            result.add_point(name, x, y)
    return result


def paper_shaped_5a():
    return figure(
        SCS=[(2, 0.05), (8, 0.4), (32, 1.8)],
        CS=[(2, 0.055), (8, 0.059), (32, 0.077)],
        BPS=[(2, 0.061), (8, 0.063), (32, 0.074)],
        BPR=[(2, 0.061), (8, 0.063), (32, 0.074)],
    )


def anti_shaped_5a():
    """SCS flat, MCS wildly better: the claims must reject this."""
    return figure(
        SCS=[(2, 0.05), (8, 0.05), (32, 0.05)],
        CS=[(2, 0.01), (8, 0.01), (32, 0.01)],
        BPS=[(2, 0.06), (8, 0.06), (32, 0.06)],
        BPR=[(2, 0.02), (8, 0.02), (32, 0.02)],
    )


class TestVerifyFigure:
    def test_paper_shape_passes_all_5a_claims(self):
        outcome = verify_figure("5a", paper_shaped_5a())
        assert all(holds for _, holds in outcome)
        assert len(outcome) == 4

    def test_anti_shape_fails(self):
        outcome = verify_figure("5a", anti_shaped_5a())
        assert not all(holds for _, holds in outcome)

    def test_missing_series_is_a_failure_not_a_crash(self):
        outcome = verify_figure("5a", figure(SCS=[(1, 1.0), (2, 10.0)]))
        assert all(holds is False for claim, holds in outcome if "scs" not in claim.claim_id)

    def test_unknown_figure_key(self):
        with pytest.raises(ExperimentError):
            verify_figure("9z", figure(a=[(1, 1.0)]))

    def test_8a_claims(self):
        good = figure(
            BP=[(1, 0.08), (2, 0.05), (3, 0.05), (4, 0.05)],
            Gnutella=[(1, 0.083), (2, 0.083), (3, 0.083), (4, 0.083)],
        )
        assert all(holds for _, holds in verify_figure("8a", good))
        bad = figure(
            BP=[(1, 0.09), (2, 0.095), (3, 0.09), (4, 0.09)],
            Gnutella=[(1, 0.083), (2, 0.03), (3, 0.083), (4, 0.2)],
        )
        assert not all(holds for _, holds in verify_figure("8a", bad))

    def test_5c_crossover_claim(self):
        good = figure(
            CS=[(2, 0.05), (4, 0.10), (8, 0.20)],
            BPS=[(2, 0.061), (4, 0.077), (8, 0.111)],
            BPR=[(2, 0.061), (4, 0.066), (8, 0.076)],
        )
        outcome = dict(
            (claim.claim_id, holds) for claim, holds in verify_figure("5c", good)
        )
        assert outcome["5c-crossover"]
        assert outcome["5c-bpr"]


class TestVerifyAll:
    def test_report_counts(self):
        report = verify_all({"5a": paper_shaped_5a()})
        assert "4/4 paper claims hold" in report
        assert "PASS" in report
        assert "FAIL" not in report

    def test_report_marks_failures(self):
        report = verify_all({"5a": anti_shaped_5a()})
        assert "FAIL" in report

    def test_missing_figures_skipped(self):
        report = verify_all({})
        assert "0/0" in report

    def test_claim_registry_covers_the_evaluation(self):
        assert set(CLAIMS) == {"5a", "5b", "5c", "6", "8a", "8b"}
        total = sum(len(claims) for claims in CLAIMS.values())
        assert total >= 14
