"""Smoke tests for the figure experiments at reduced scale.

Each test checks that a figure runs end to end and that its *shape*
matches the paper's qualitative claims.  Full-scale runs live in
``benchmarks/``.
"""

import pytest

from repro.agents.costs import AgentCosts
from repro.eval.figures import (
    FigureParams,
    figure_5a,
    figure_5b,
    figure_5c,
    figure_8a,
    figure_8b,
    figures_6_and_7,
    tree_size_for_level,
)

SMALL = FigureParams(objects_per_node=60, corpus_size=10, queries=3)


@pytest.fixture(scope="module")
def fig5a():
    return figure_5a(SMALL, sizes=(2, 4, 8))


@pytest.fixture(scope="module")
def fig67():
    return figures_6_and_7(SMALL, node_count=10)


class TestFigure5a:
    def test_series_present(self, fig5a):
        assert set(fig5a.series) == {"SCS", "CS", "BPS", "BPR"}

    def test_scs_grows_steeply(self, fig5a):
        scs = fig5a.y_values("SCS")
        assert scs[-1] > 2 * scs[0]

    def test_mcs_beats_scs_at_scale(self, fig5a):
        assert fig5a.y_values("CS")[-1] < fig5a.y_values("SCS")[-1]

    def test_bps_equals_bpr_on_star(self, fig5a):
        """Nothing to reconfigure on a star."""
        bps = fig5a.y_values("BPS")
        bpr = fig5a.y_values("BPR")
        for left, right in zip(bps, bpr):
            assert left == pytest.approx(right, rel=0.05)


class TestFigure5b:
    def test_cs_wins_level_1_but_degrades(self):
        result = figure_5b(SMALL, levels=(1, 3))
        cs = result.y_values("CS")
        bps = result.y_values("BPS")
        assert cs[0] < bps[0]  # level 1: no code-shipping overhead
        assert cs[-1] > bps[-1]  # deeper: relay on the return path

    def test_bpr_never_worse_than_bps(self):
        result = figure_5b(SMALL, levels=(2, 3))
        for bpr, bps in zip(result.y_values("BPR"), result.y_values("BPS")):
            assert bpr <= bps * 1.02

    def test_tree_sizes(self):
        assert tree_size_for_level(1) == 3
        assert tree_size_for_level(4) == 31
        assert tree_size_for_level(5) == 48  # the paper's 48-node cap
        with pytest.raises(Exception):
            tree_size_for_level(0)


class TestFigure5c:
    def test_cs_degrades_along_the_line(self):
        result = figure_5c(SMALL, sizes=(2, 8))
        cs = result.y_values("CS")
        bpr = result.y_values("BPR")
        assert cs[0] < bpr[0]  # very small network: CS is fine
        assert cs[-1] > bpr[-1]  # longer chain: BPR wins


class TestFigures6And7:
    def test_curves_cover_all_responders(self, fig67):
        rate, quantity = fig67
        for scheme in ("CS", "BPS", "BPR"):
            ranks = [x for x, _ in rate.series_named(scheme)]
            assert ranks == list(range(1, 10))  # 9 responding nodes

    def test_response_times_monotone_in_rank(self, fig67):
        rate, _ = fig67
        for scheme in ("CS", "BPS", "BPR"):
            times = rate.y_values(scheme)
            assert times == sorted(times)

    def test_bpr_finishes_no_later_than_bps(self, fig67):
        rate, _ = fig67
        assert rate.y_values("BPR")[-1] <= rate.y_values("BPS")[-1] * 1.02

    def test_quantity_reaches_total(self, fig67):
        _, quantity = fig67
        totals = {
            scheme: quantity.series_named(scheme)[-1][1]
            for scheme in ("CS", "BPS", "BPR")
        }
        # All schemes eventually deliver the same answers.
        assert len(set(totals.values())) == 1

    def test_cs_first_answer_is_fast(self, fig67):
        """CS returns the first few answers fastest (Figure 7's head)."""
        rate, _ = fig67
        assert rate.series_named("CS")[0][1] <= rate.series_named("BPS")[0][1]


class TestFigure8:
    def test_bp_beats_gnutella_after_reconfiguration(self):
        """At smoke scale the run-1 code-shipping overhead can exceed the
        relay savings; the all-runs win is checked at paper scale by
        ``benchmarks/bench_fig8a_gnutella_runs.py``."""
        result = figure_8a(SMALL, node_count=12, holder_count=3)
        bp = result.y_values("BP")
        gnutella = result.y_values("Gnutella")
        assert bp[0] < gnutella[0] * 1.5
        for left, right in zip(bp[1:], gnutella[1:]):
            assert left < right

    def test_bp_improves_after_first_run(self):
        result = figure_8a(SMALL, node_count=12, holder_count=3)
        bp = result.y_values("BP")
        assert bp[0] > bp[1]
        assert bp[1] == pytest.approx(bp[-1], rel=0.3)

    def test_gnutella_flat_across_runs(self):
        result = figure_8a(SMALL, node_count=12, holder_count=3)
        gnutella = result.y_values("Gnutella")
        assert max(gnutella) - min(gnutella) < 0.1 * max(gnutella)

    def test_more_peers_help_both(self):
        result = figure_8b(
            SMALL, node_count=12, peer_counts=(2, 8), holder_count=3
        )
        for scheme in ("BP", "Gnutella"):
            values = result.y_values(scheme)
            assert values[-1] < values[0]

    def test_bp_below_gnutella_at_every_peer_count(self):
        result = figure_8b(
            SMALL, node_count=12, peer_counts=(2, 8), holder_count=3
        )
        for bp, gnutella in zip(result.y_values("BP"), result.y_values("Gnutella")):
            assert bp < gnutella


class TestParams:
    def test_validation(self):
        with pytest.raises(Exception):
            FigureParams(objects_per_node=-1)
        with pytest.raises(Exception):
            FigureParams(queries=0)
