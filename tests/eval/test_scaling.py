"""The scaling figure: jittered workload, executor parity, series shape."""

from repro.eval.figures import FigureParams
from repro.eval.scaling import (
    JITTER_SPAN,
    _edge_jitter,
    _flood_deployment,
    _observables,
    available_cores,
    figure_scaling,
)

PARAMS = FigureParams(objects_per_node=0, queries=1, seed=0)


def _overlay_latencies(node_count=24, seed=0):
    from repro.topology.builders import random_graph

    deployment = _flood_deployment(node_count, seed=seed)
    topology = random_graph(node_count, degree=4, seed=seed)
    network = deployment.network
    latencies = []
    for a, b in sorted(topology.edges):
        for src, dst in ((a, b), (b, a)):
            latencies.append(
                network.link_for(
                    deployment.nodes[src].host.address,
                    deployment.nodes[dst].host.address,
                ).latency
            )
    return network.default_link.latency, latencies


class TestJitter:
    def test_edge_jitter_deterministic_and_directional(self):
        assert _edge_jitter("a", "b") == _edge_jitter("a", "b")
        assert 0.0 <= _edge_jitter("a", "b") < 1.0
        assert _edge_jitter("a", "b") != _edge_jitter("b", "a")

    def test_applied_latencies_nearly_all_unique(self):
        # Unique timestamps are what make exactly one firing order
        # legal, so the distributed executor must be bit-exact.
        _base, latencies = _overlay_latencies()
        assert len(set(latencies)) > len(latencies) * 0.9

    def test_jitter_span_is_small(self):
        base, latencies = _overlay_latencies()
        for latency in latencies:
            assert base <= latency <= base * (1.0 + JITTER_SPAN)


class TestFloodWorkload:
    def test_serial_and_lockstep_observables_match(self):
        serial = _flood_deployment(48, seed=0)
        serial.sim.run()
        reference = _observables(serial.network)

        sharded = _flood_deployment(48, seed=0, shards=2)
        sharded.sim.run()
        assert _observables(sharded.network) == reference

    def test_shard_mode_does_not_change_observables(self):
        reference = None
        for mode in ("hash", "locality"):
            deployment = _flood_deployment(48, seed=0, shards=2, shard_mode=mode)
            deployment.sim.run()
            observed = _observables(deployment.network)
            if reference is None:
                reference = observed
            else:
                assert observed == reference


class TestFigure:
    def test_small_sweep_shape_and_identity(self):
        figure = figure_scaling(
            PARAMS, node_counts=(48,), shard_counts=(1, 2)
        )
        assert "measured 48n" in figure.series
        assert "projected 48n" in figure.series
        # Both series anchored at (1, 1.0): serial is its own baseline.
        assert figure.series["measured 48n"][0] == (1, 1.0)
        assert figure.series["projected 48n"][0] == (1, 1.0)
        assert [x for x, _y in figure.series["projected 48n"]] == [1, 2]
        trials = figure_scaling.last_trials
        assert all(trial["identical"] for trial in trials)
        executors = {trial["executor"] for trial in trials}
        assert executors == {"serial", "lockstep", "distributed"}

    def test_weak_series_grows_nodes_with_shards(self):
        figure = figure_scaling(
            PARAMS, node_counts=(), shard_counts=(1, 2), weak_base=24
        )
        trials = figure_scaling.last_trials
        assert {t["node_count"] for t in trials} == {24, 48}
        assert [x for x, _y in figure.series["weak projected"]] == [1, 2]

    def test_available_cores_positive(self):
        assert available_cores() >= 1
