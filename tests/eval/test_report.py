"""Tests for report rendering."""

import pytest

from repro.errors import ExperimentError
from repro.eval.experiment import ExperimentRunner, FigureResult
from repro.eval.report import (
    agent_path_stats,
    format_agent_path_stats,
    format_figure,
    format_table,
)
from repro.util.tracing import Tracer


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["x", "value"], [[1, 10.5], [200, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "x" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        # Columns right-aligned: the widths are consistent.
        assert len(lines[2]) == len(lines[3])

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456789]])
        assert "1.2346" in text


class TestFigureResult:
    def test_add_and_query(self):
        result = FigureResult("F", "t", "x", "y")
        result.add_point("a", 1, 2.0)
        result.add_point("a", 2, 3.0)
        assert result.series_named("a") == [(1, 2.0), (2, 3.0)]
        assert result.y_values("a") == [2.0, 3.0]

    def test_unknown_series(self):
        result = FigureResult("F", "t", "x", "y")
        with pytest.raises(ExperimentError):
            result.series_named("ghost")


class TestFormatFigure:
    def test_renders_all_series(self):
        result = FigureResult("Figure 9", "demo", "n", "seconds")
        result.add_point("BP", 1, 0.5)
        result.add_point("BP", 2, 0.6)
        result.add_point("CS", 1, 0.7)
        text = format_figure(result)
        assert "Figure 9" in text
        assert "BP" in text and "CS" in text
        assert "0.5000" in text

    def test_missing_points_rendered_as_dash(self):
        result = FigureResult("F", "t", "x", "y")
        result.add_point("a", 1, 1.0)
        result.add_point("b", 2, 2.0)
        text = format_figure(result)
        assert "-" in text.splitlines()[-1] or "-" in text

    def test_notes_included(self):
        result = FigureResult("F", "t", "x", "y", notes="scaled down")
        result.add_point("a", 1, 1.0)
        assert "scaled down" in format_figure(result)


class TestAgentPathStats:
    def test_collects_profiler_counters_and_timers(self):
        tracer = Tracer()
        tracer.bump("agent-path", "execute")
        tracer.bump("agent-path", "execute")
        tracer.add_time("agent-path", "execute", 0.125)
        stats = agent_path_stats(tracer)
        assert stats["execute_count"] == 2
        assert stats["execute_seconds"] == 0.125
        assert stats["extract_count"] == 0
        # Process-wide cache counters ride along.
        for key in ("source_cache_hits", "compile_cache_hits"):
            assert key in stats

    def test_format_renders_every_op(self):
        text = format_agent_path_stats(Tracer())
        for op in ("extract", "install", "execute", "clone"):
            assert f"{op}_count" in text
        assert "compile_cache_hits" in text


class TestExperimentRunner:
    def test_measure_aggregates(self):
        runner = ExperimentRunner(repetitions=3, base_seed=10)
        seeds = []

        def run(seed):
            seeds.append(seed)
            return float(seed)

        stats = runner.measure(run)
        assert seeds == [10, 11, 12]
        assert stats.mean == 11.0

    def test_collect(self):
        runner = ExperimentRunner(repetitions=2)
        assert runner.collect(lambda seed: seed * 2) == [0, 2]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner(repetitions=0)
