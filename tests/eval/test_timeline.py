"""Tests for the trace timeline renderer."""

from repro.eval.timeline import busiest_hosts, event_counts, render_timeline
from repro.util.tracing import Tracer


def traced():
    tracer = Tracer()
    tracer.record(1.0, "net", "send", src="a", dst="b")
    tracer.record(1.002, "net", "deliver", host="b")
    tracer.record(1.005, "agent", "execute", agent="x", hops=1)
    tracer.record(1.010, "net", "deliver", host="b")
    tracer.record(1.020, "net", "deliver", host="c")
    return tracer


class TestRenderTimeline:
    def test_chronological_with_relative_offsets(self):
        text = render_timeline(traced())
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("+    0.000ms")
        assert "agent" in lines[2]

    def test_category_filter(self):
        text = render_timeline(traced(), categories=["agent"])
        assert "execute" in text
        assert "deliver" not in text

    def test_time_window(self):
        text = render_timeline(traced(), start=1.004, end=1.012)
        assert len(text.splitlines()) == 2

    def test_limit_truncates(self):
        text = render_timeline(traced(), limit=2)
        assert "3 more events" in text

    def test_empty(self):
        assert "no matching" in render_timeline(Tracer())


class TestAggregation:
    def test_event_counts(self):
        counts = event_counts(traced())
        assert counts[("net", "deliver")] == 3
        assert counts[("agent", "execute")] == 1

    def test_busiest_hosts(self):
        ranked = busiest_hosts(traced())
        assert ranked[0] == ("b", 2)
        assert ranked[1] == ("c", 1)

    def test_busiest_hosts_top(self):
        assert len(busiest_hosts(traced(), top=1)) == 1

    def test_end_to_end_with_real_trace(self):
        """The timeline works on a genuine simulation trace."""
        from repro.agents.costs import AgentCosts
        from repro.core import BestPeerConfig, build_network
        from repro.topology import line
        from repro.util.tracing import Tracer as RealTracer

        tracer = RealTracer()
        net = build_network(
            3,
            config=BestPeerConfig(
                agent_costs=AgentCosts(
                    class_install_time=0.001,
                    state_install_time=0.001,
                    execute_overhead=0.0,
                    page_io_time=0.0,
                    object_match_time=0.0,
                )
            ),
            topology=line(3),
            tracer=tracer,
        )
        net.nodes[2].share(["k"], b"x")
        net.base.issue_query("k")
        net.sim.run()
        text = render_timeline(tracer, categories=["agent", "node"])
        assert "dispatch" in text
        assert "execute" in text
        assert busiest_hosts(tracer)
