"""Tests for evaluation metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.eval.metrics import (
    Arrival,
    answer_curve,
    average_answer_curves,
    average_curves,
    completion_time,
    response_curve,
)


def arrivals(*specs):
    return [Arrival(t, r, c) for t, r, c in specs]


class TestCompletionTime:
    def test_last_arrival(self):
        data = arrivals((1.0, "a", 2), (3.0, "b", 1), (2.0, "c", 5))
        assert completion_time(data) == 3.0

    def test_empty(self):
        assert completion_time([]) == 0.0


class TestResponseCurve:
    def test_ranks_distinct_responders(self):
        data = arrivals((1.0, "a", 2), (2.0, "b", 1), (3.0, "c", 1))
        assert response_curve(data) == [(1, 1.0), (2, 2.0), (3, 3.0)]

    def test_duplicate_responder_counted_once(self):
        data = arrivals((1.0, "a", 2), (2.0, "a", 1), (3.0, "b", 1))
        assert response_curve(data) == [(1, 1.0), (2, 3.0)]

    def test_unsorted_input(self):
        data = arrivals((3.0, "b", 1), (1.0, "a", 1))
        assert response_curve(data) == [(1, 1.0), (2, 3.0)]

    def test_empty(self):
        assert response_curve([]) == []


class TestAnswerCurve:
    def test_cumulative_counts(self):
        data = arrivals((1.0, "a", 2), (2.0, "b", 3))
        assert answer_curve(data) == [(1.0, 2), (2.0, 5)]

    def test_empty(self):
        assert answer_curve([]) == []

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=1, max_value=9),
            ),
            max_size=20,
        )
    )
    def test_curve_is_monotone(self, specs):
        curve = answer_curve(arrivals(*specs))
        times = [t for t, _ in curve]
        counts = [c for _, c in curve]
        assert times == sorted(times)
        assert counts == sorted(counts)
        if curve:
            assert counts[-1] == sum(c for _, _, c in specs)


class TestAveraging:
    def test_average_response_curves(self):
        curves = [[(1, 1.0), (2, 3.0)], [(1, 2.0), (2, 5.0)]]
        assert average_curves(curves) == [(1, 1.5), (2, 4.0)]

    def test_truncates_to_shortest(self):
        curves = [[(1, 1.0), (2, 3.0)], [(1, 2.0)]]
        assert average_curves(curves) == [(1, 1.5)]

    def test_rank_mismatch_raises(self):
        with pytest.raises(ExperimentError):
            average_curves([[(1, 1.0)], [(2, 1.0)]])

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            average_curves([])

    def test_average_answer_curves(self):
        curves = [[(1.0, 5), (2.0, 9)], [(3.0, 5), (4.0, 9)]]
        assert average_answer_curves(curves) == [(2.0, 5), (3.0, 9)]

    def test_average_answer_curves_empty_raises(self):
        with pytest.raises(ExperimentError):
            average_answer_curves([])
