"""The performance fast paths must never change a result.

Five independent switches can alter how much work the reproduction
does per figure — the wire encoding cache, StorM's decoded-scan cache,
the agent-path source/compile caches (``REPRO_NO_AGENT_CACHE=1``), the
compact wire codec (``REPRO_WIRE_CODEC=pickle``), and the parallel
experiment runner.  Each exists purely to save wall-clock; these tests
pin down that every observable output (figure series, bytes on the
wire, packet counts, answer hop counts, buffer I/O statistics) is
bit-identical whichever way the switches are thrown.
"""

from __future__ import annotations

import pytest

import repro.storm.store as store_module
import repro.storm.template as template_module
import repro.util.serialization as serialization_module
from repro.agents import codeship
from repro.net.codec import WIRE_CODEC_ENV_VAR
from repro.net.datacodec import WIRE_DATA_ENV_VAR
from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.eval.experiment import ExperimentRunner, ParallelExperimentRunner
from repro.eval.figures import FigureParams, figure_5a, figure_8a
from repro.topology.builders import line, star

#: Small enough to run every variant in seconds, big enough to exercise
#: flooding, reconfiguration, StorM scans and multi-page heaps.
TINY = FigureParams(objects_per_node=20, object_size=256, queries=2)


def _run_figures():
    fig5 = figure_5a(TINY, sizes=(1, 2, 4))
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2)
    return fig5.series, fig8.series


@pytest.fixture
def fastpath_results():
    """Figure series with every fast path at its default (enabled)."""
    return _run_figures()


def test_series_identical_with_caches_disabled(monkeypatch, fastpath_results):
    monkeypatch.setattr(serialization_module, "WIRE_CACHE_CAPACITY", 0)
    monkeypatch.setattr(store_module, "SCAN_CACHE_DEFAULT", False)
    assert _run_figures() == fastpath_results


def test_series_identical_with_bulk_load_disabled(monkeypatch, fastpath_results):
    monkeypatch.setenv(store_module.BULK_LOAD_ENV_VAR, "1")
    template_module.clear_templates()
    try:
        assert _run_figures() == fastpath_results
    finally:
        # Templates built on the per-record path are still bit-identical,
        # but drop them so later tests rebuild via the default path.
        template_module.clear_templates()


def test_series_identical_with_templates_disabled(monkeypatch, fastpath_results):
    monkeypatch.setenv(template_module.TEMPLATE_ENV_VAR, "1")
    assert _run_figures() == fastpath_results


def test_series_identical_with_bulk_and_templates_disabled(
    monkeypatch, fastpath_results
):
    # Both fast paths off is exactly the pre-optimization per-record
    # population loop — the semantic reference.
    monkeypatch.setenv(store_module.BULK_LOAD_ENV_VAR, "1")
    monkeypatch.setenv(template_module.TEMPLATE_ENV_VAR, "1")
    assert _run_figures() == fastpath_results


def test_series_identical_with_templates_disabled_parallel(
    monkeypatch, fastpath_results
):
    # Worker processes inherit the environment switch.
    monkeypatch.setenv(template_module.TEMPLATE_ENV_VAR, "1")
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def test_series_identical_with_bulk_load_disabled_parallel(
    monkeypatch, fastpath_results
):
    monkeypatch.setenv(store_module.BULK_LOAD_ENV_VAR, "1")
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def test_series_identical_with_agent_caches_disabled(monkeypatch, fastpath_results):
    monkeypatch.setenv(codeship.NO_CACHE_ENV_VAR, "1")
    codeship.clear_caches()
    assert _run_figures() == fastpath_results


def test_series_identical_with_agent_caches_disabled_parallel(
    monkeypatch, fastpath_results
):
    # Worker processes inherit the environment, so the bypass holds
    # under the multiprocessing runner too.
    monkeypatch.setenv(codeship.NO_CACHE_ENV_VAR, "1")
    codeship.clear_caches()
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def test_series_identical_under_parallel_runner(fastpath_results):
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def test_series_identical_under_serial_runner(fastpath_results):
    serial = ExperimentRunner()
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=serial)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=serial)
    assert (fig5.series, fig8.series) == fastpath_results


def _drive_deployment() -> tuple[list[int], list[tuple], int, int, int]:
    """One deterministic BestPeer workload; returns wire-level observables
    plus per-answer hop counts."""
    deployment = build_network(
        5,
        config=BestPeerConfig(max_direct_peers=3, strategy="maxcount"),
        topology=line(5),
    )
    deployment.nodes[3].share(["needle"], b"payload-at-node-3")
    deployment.nodes[4].share(["needle"], b"payload-at-node-4")
    sizes = []
    answer_hops = []
    for _ in range(2):
        handle = deployment.base.issue_query("needle")
        deployment.sim.run()
        answer_hops.extend(
            sorted(
                (str(ans.responder), ans.hops, ans.answer_count)
                for ans in handle.answers
            )
        )
        deployment.base.finish_query(handle)
    network = deployment.network
    for host in network.hosts.values():
        sizes.append(host.bytes_sent)
    return (
        sizes,
        answer_hops,
        network.bytes_carried,
        network.packets_delivered,
        network.packets_dropped,
    )


def test_wire_bytes_identical_cache_on_vs_off(monkeypatch):
    with_cache = _drive_deployment()
    monkeypatch.setattr(serialization_module, "WIRE_CACHE_CAPACITY", 0)
    without_cache = _drive_deployment()
    assert with_cache == without_cache


def test_wire_bytes_and_hops_identical_agent_cache_on_vs_off(monkeypatch):
    codeship.clear_caches()
    with_cache = _drive_deployment()
    monkeypatch.setenv(codeship.NO_CACHE_ENV_VAR, "1")
    codeship.clear_caches()
    without_cache = _drive_deployment()
    assert with_cache == without_cache


def test_series_identical_under_pickle_wire_codec(monkeypatch, fastpath_results):
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
    assert _run_figures() == fastpath_results


def test_series_identical_under_pickle_wire_codec_parallel(
    monkeypatch, fastpath_results
):
    # The codec switch is read from the environment on every encode, so
    # the multiprocessing runner's workers inherit it like any other env.
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def test_wire_bytes_and_hops_identical_compact_vs_pickle(monkeypatch):
    monkeypatch.delenv(WIRE_CODEC_ENV_VAR, raising=False)
    compact = _drive_deployment()
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
    assert _drive_deployment() == compact


def _flood_observables(node_count: int = 32) -> tuple:
    """A seeded star flood; per-host byte counts plus network totals."""
    deployment = build_network(
        node_count,
        config=BestPeerConfig(max_direct_peers=node_count, strategy="static"),
        topology=star(node_count),
    )
    deployment.nodes[3].share(["needle"], b"payload-at-node-3")
    deployment.nodes[node_count - 1].share(["needle"], b"payload-at-the-rim")
    answer_hops = []
    for _ in range(2):
        handle = deployment.base.issue_query("needle")
        deployment.sim.run()
        answer_hops.extend(
            sorted(
                (str(ans.responder), ans.hops, ans.answer_count)
                for ans in handle.answers
            )
        )
        deployment.base.finish_query(handle)
    network = deployment.network
    return (
        [host.bytes_sent for host in network.hosts.values()],
        answer_hops,
        network.bytes_carried,
        network.packets_delivered,
        network.packets_dropped,
        network.decode_errors,
    )


def test_32_node_flood_identical_compact_vs_pickle(monkeypatch):
    monkeypatch.delenv(WIRE_CODEC_ENV_VAR, raising=False)
    compact = _flood_observables()
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
    assert _flood_observables() == compact


# ---------------------------------------------------------------------------
# Data-plane streaming codec: REPRO_WIRE_DATA must be invisible
# ---------------------------------------------------------------------------


def test_series_identical_under_pickle_data_codec(monkeypatch, fastpath_results):
    monkeypatch.setenv(WIRE_DATA_ENV_VAR, "pickle")
    assert _run_figures() == fastpath_results


def test_series_identical_under_pickle_data_codec_parallel(
    monkeypatch, fastpath_results
):
    # Read from the environment on every encode, so the multiprocessing
    # runner's workers inherit the switch like any other env var.
    monkeypatch.setenv(WIRE_DATA_ENV_VAR, "pickle")
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def test_wire_bytes_and_hops_identical_stream_vs_pickle(monkeypatch):
    monkeypatch.delenv(WIRE_DATA_ENV_VAR, raising=False)
    stream = _drive_deployment()
    monkeypatch.setenv(WIRE_DATA_ENV_VAR, "pickle")
    assert _drive_deployment() == stream


def test_32_node_flood_identical_stream_vs_pickle(monkeypatch):
    monkeypatch.delenv(WIRE_DATA_ENV_VAR, raising=False)
    stream = _flood_observables()
    monkeypatch.setenv(WIRE_DATA_ENV_VAR, "pickle")
    assert _flood_observables() == stream


def test_32_node_flood_identical_with_both_planes_on_pickle(monkeypatch):
    # Both fallbacks together are the full pre-codec wire stack.
    monkeypatch.delenv(WIRE_CODEC_ENV_VAR, raising=False)
    monkeypatch.delenv(WIRE_DATA_ENV_VAR, raising=False)
    fast = _flood_observables()
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
    monkeypatch.setenv(WIRE_DATA_ENV_VAR, "pickle")
    assert _flood_observables() == fast


def _faulted_observables(runner) -> tuple:
    """The churn figure at a nonzero rate: faults fire mid-run, yet the
    seeded timeline must leave serial and parallel runs bit-identical."""
    from repro.eval.churn import figure_churn

    params = FigureParams(objects_per_node=0, queries=2, seed=0)
    result = figure_churn(
        params, node_count=8, churn_rates=(0.5,), runner=runner
    )
    trials = figure_churn.last_trials
    return (
        result.series,
        [
            (
                t["scheme"],
                tuple(t["recalls"]),
                tuple(t["answer_hops"]),
                t["bytes_carried"],
                t["packets_delivered"],
                tuple(sorted(t["drops_by_reason"].items())),
                tuple(sorted(t["faults_applied"].items())),
            )
            for t in trials
        ],
    )


def test_faulted_series_identical_serial_vs_parallel():
    # Fault injection must not break the fast-path contract: a nonzero
    # FaultPlan replays identically under the default, serial, and
    # parallel runners.
    default = _faulted_observables(None)
    assert _faulted_observables(ExperimentRunner()) == default
    assert _faulted_observables(ParallelExperimentRunner(jobs=2)) == default


def test_encoder_cache_actually_hits_during_flood():
    # A star base floods one envelope object to every peer.  The first
    # query ships per-peer class source (distinct envelopes); once the
    # peers cache the agent class, the second query's fan-out reuses a
    # single envelope and must hit the encoder cache.
    deployment = build_network(
        6,
        config=BestPeerConfig(max_direct_peers=8, strategy="static"),
        topology=star(6),
    )
    deployment.nodes[3].share(["needle"], b"on a leaf")
    for _ in range(2):
        handle = deployment.base.issue_query("needle")
        deployment.sim.run()
        deployment.base.finish_query(handle)
    network = deployment.network
    assert network.encode_misses > 0
    assert network.encode_hits > 0  # fan-out re-used at least one encoding


# ---------------------------------------------------------------------------
# Routing framework: REPRO_ROUTING=legacy must be invisible
# ---------------------------------------------------------------------------


def test_series_identical_under_legacy_routing(monkeypatch, fastpath_results):
    # "legacy" floods to every non-suspect peer in table order — the
    # pre-framework forwarding path.  For the paper strategies the
    # strategy-driven fan-out must be bit-identical to it.
    from repro.core.routing.base import ROUTING_ENV_VAR

    monkeypatch.setenv(ROUTING_ENV_VAR, "legacy")
    assert _run_figures() == fastpath_results


def test_series_identical_under_legacy_routing_parallel(
    monkeypatch, fastpath_results
):
    # Checked per call, so --jobs workers inherit the switch via env.
    from repro.core.routing.base import ROUTING_ENV_VAR

    monkeypatch.setenv(ROUTING_ENV_VAR, "legacy")
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def test_wire_bytes_and_hops_identical_legacy_vs_strategy_routing(monkeypatch):
    from repro.core.routing.base import ROUTING_ENV_VAR

    monkeypatch.delenv(ROUTING_ENV_VAR, raising=False)
    strategy_path = _drive_deployment()
    monkeypatch.setenv(ROUTING_ENV_VAR, "legacy")
    assert _drive_deployment() == strategy_path


def test_faulted_series_identical_under_legacy_routing(monkeypatch):
    # The churn figure (maxcount vs static) under a nonzero fault plan:
    # same series, bytes, hops and drop counters either way the
    # forwarding switch is thrown, serial and parallel.
    from repro.core.routing.base import ROUTING_ENV_VAR

    monkeypatch.delenv(ROUTING_ENV_VAR, raising=False)
    default = _faulted_observables(None)
    monkeypatch.setenv(ROUTING_ENV_VAR, "legacy")
    assert _faulted_observables(None) == default
    assert _faulted_observables(ParallelExperimentRunner(jobs=2)) == default


def _routing_observables(runner) -> tuple:
    """The routing comparison figure under the churn fault plan; every
    per-trial observable, for the new strategies only (the paper
    strategies are covered by the legacy-bypass tests above)."""
    from repro.eval.routing import figure_routing

    params = FigureParams(objects_per_node=0, queries=2, seed=0)
    result = figure_routing(
        params,
        node_count=8,
        churn_rates=(0.0, 0.3),
        strategies=("history", "superpeer", "costaware"),
        runner=runner,
    )
    trials = figure_routing.last_trials
    return (
        result.series,
        [
            (
                t["strategy"],
                tuple(t["recalls"]),
                t["messages_per_query"],
                t["bytes_per_query"],
                t["setup_packets"],
                t["setup_bytes"],
                t["bytes_carried"],
                t["packets_delivered"],
                tuple(sorted(t["drops_by_reason"].items())),
                tuple(sorted(t["faults_applied"].items())),
                t["hint_queries"],
                t["hint_hits"],
                t["hint_fallbacks"],
            )
            for t in trials
        ],
    )


def test_new_strategies_self_identical_serial_vs_parallel():
    # history / superpeer / costaware under churn: the seeded timeline
    # (including hint publishes, hint queries and fallback floods) must
    # replay bit-identically whichever runner executes the sweep.
    default = _routing_observables(None)
    assert _routing_observables(ExperimentRunner()) == default
    assert _routing_observables(ParallelExperimentRunner(jobs=2)) == default


# ---------------------------------------------------------------------------
# In-network top-k: REPRO_TOPK and k=None must leave legacy runs untouched
# ---------------------------------------------------------------------------


def _topk_flood_observables(top_k) -> tuple:
    """A seeded star flood with several scored matches per rim node."""
    deployment = build_network(
        8,
        config=BestPeerConfig(
            max_direct_peers=8, strategy="static", top_k=top_k
        ),
        topology=star(8),
    )
    for index, node in enumerate(deployment.nodes[1:], 1):
        node.share(["needle"] + ["pad"] * (index % 3), bytes([index]) * 64)
    answer_hops = []
    for _ in range(2):
        handle = deployment.base.issue_query("needle")
        deployment.sim.run()
        answer_hops.extend(
            sorted(
                (str(ans.responder), ans.hops, ans.answer_count)
                for ans in handle.answers
            )
        )
        deployment.base.finish_query(handle)
    network = deployment.network
    return (
        [host.bytes_sent for host in network.hosts.values()],
        answer_hops,
        network.bytes_carried,
        network.packets_delivered,
        network.packets_dropped,
    )


def test_topk_off_bitidentical_to_k_none(monkeypatch):
    # REPRO_TOPK=off with a configured k is the legacy exhaustive path:
    # same per-host bytes, hop counts, and packet totals as top_k=None.
    from repro.agents.topk import TOPK_ENV_VAR

    monkeypatch.delenv(TOPK_ENV_VAR, raising=False)
    baseline = _topk_flood_observables(None)
    monkeypatch.setenv(TOPK_ENV_VAR, "off")
    assert _topk_flood_observables(4) == baseline
    assert _topk_flood_observables(None) == baseline
    # "on" with no configured k is equally invisible.
    monkeypatch.setenv(TOPK_ENV_VAR, "on")
    assert _topk_flood_observables(None) == baseline


def test_legacy_workloads_unaffected_by_topk_env(monkeypatch):
    # The per-call env check must be a pure read: legacy (k=None)
    # deployments stay bit-identical whichever way the switch is set.
    from repro.agents.topk import TOPK_ENV_VAR

    monkeypatch.delenv(TOPK_ENV_VAR, raising=False)
    drive, flood = _drive_deployment(), _flood_observables()
    monkeypatch.setenv(TOPK_ENV_VAR, "off")
    assert (_drive_deployment(), _flood_observables()) == (drive, flood)


def test_series_identical_under_topk_bypass(monkeypatch, fastpath_results):
    from repro.agents.topk import TOPK_ENV_VAR

    monkeypatch.setenv(TOPK_ENV_VAR, "off")
    assert _run_figures() == fastpath_results


def test_series_identical_under_topk_bypass_parallel(
    monkeypatch, fastpath_results
):
    # Checked per call, so --jobs workers inherit the switch via env.
    from repro.agents.topk import TOPK_ENV_VAR

    monkeypatch.setenv(TOPK_ENV_VAR, "off")
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def _topk_figure_observables(runner) -> tuple:
    """The top-k figure under the churn fault plan: every per-trial
    observable, bounded (k=2) and exhaustive in the same sweep."""
    from repro.eval.topk import figure_topk

    params = FigureParams(objects_per_node=0, queries=2, seed=0)
    result = figure_topk(
        params,
        node_count=8,
        ks=(2, None),
        ttls=(4,),
        churn_rates=(0.3,),
        runner=runner,
    )
    trials = figure_topk.last_trials
    return (
        result.series,
        [
            (
                t["label"],
                t["ttl"],
                t["rate"],
                t["answers_per_query"],
                t["dominated_per_query"],
                t["digests_per_query"],
                t["messages_per_query"],
                t["bytes_per_query"],
                tuple(sorted(t["quality"].items())),
                t["setup_packets"],
                t["setup_bytes"],
                t["bytes_carried"],
                t["packets_delivered"],
                tuple(sorted(t["drops_by_reason"].items())),
                tuple(sorted(t["faults_applied"].items())),
            )
            for t in trials
        ],
    )


def test_topk_figure_self_identical_serial_vs_parallel():
    # A fixed-k sweep under the seeded fault plan: accumulator state
    # rides the flood, dominated answers die mid-network, faults fire —
    # and the whole timeline still replays bit-identically whichever
    # runner executes it.
    default = _topk_figure_observables(None)
    assert _topk_figure_observables(ExperimentRunner()) == default
    assert _topk_figure_observables(ParallelExperimentRunner(jobs=2)) == default


# ---------------------------------------------------------------------------
# Replication: REPRO_REPLICATION and rf=1 must leave legacy runs untouched
# ---------------------------------------------------------------------------


def _replication_flood_observables(policy) -> tuple:
    """A seeded star flood under an explicit replication policy."""
    from repro.replication import ReplicationPolicy

    deployment = build_network(
        8,
        config=BestPeerConfig(
            max_direct_peers=8,
            strategy="static",
            replication=policy or ReplicationPolicy(),
        ),
        topology=star(8),
    )
    for index, node in enumerate(deployment.nodes[1:], 1):
        node.share(["needle"] + ["pad"] * (index % 3), bytes([index]) * 64)
    answer_hops = []
    for _ in range(2):
        handle = deployment.base.issue_query("needle")
        deployment.sim.run()
        answer_hops.extend(
            sorted(
                (str(ans.responder), ans.hops, ans.answer_count)
                for ans in handle.answers
            )
        )
        deployment.base.finish_query(handle)
    network = deployment.network
    return (
        [host.bytes_sent for host in network.hosts.values()],
        answer_hops,
        network.bytes_carried,
        network.packets_delivered,
        network.packets_dropped,
    )


def test_replication_off_bitidentical_to_rf1(monkeypatch):
    # REPRO_REPLICATION=off with an active policy is the legacy
    # single-copy path: same per-host bytes, hop counts, and packet
    # totals as the default rf=1 policy.  "on" with rf=1 is equally
    # invisible — the default policy replicates nothing.
    from repro.replication import REPLICATION_ENV_VAR, ReplicationPolicy

    monkeypatch.delenv(REPLICATION_ENV_VAR, raising=False)
    baseline = _replication_flood_observables(None)
    monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
    assert (
        _replication_flood_observables(
            ReplicationPolicy(rf=2, hot_rf=3, cache_capacity=8)
        )
        == baseline
    )
    assert _replication_flood_observables(None) == baseline
    monkeypatch.setenv(REPLICATION_ENV_VAR, "on")
    assert _replication_flood_observables(ReplicationPolicy(rf=1)) == baseline


def test_legacy_workloads_unaffected_by_replication_env(monkeypatch):
    # The per-call env check must be a pure read: default-policy
    # deployments stay bit-identical whichever way the switch is set.
    from repro.replication import REPLICATION_ENV_VAR

    monkeypatch.delenv(REPLICATION_ENV_VAR, raising=False)
    drive, flood = _drive_deployment(), _flood_observables()
    monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
    assert (_drive_deployment(), _flood_observables()) == (drive, flood)


def test_series_identical_under_replication_bypass(monkeypatch, fastpath_results):
    from repro.replication import REPLICATION_ENV_VAR

    monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
    assert _run_figures() == fastpath_results


def test_series_identical_under_replication_bypass_parallel(
    monkeypatch, fastpath_results
):
    # Checked per call, so --jobs workers inherit the switch via env.
    from repro.replication import REPLICATION_ENV_VAR

    monkeypatch.setenv(REPLICATION_ENV_VAR, "off")
    parallel = ParallelExperimentRunner(jobs=2)
    fig5 = figure_5a(TINY, sizes=(1, 2, 4), runner=parallel)
    fig8 = figure_8a(TINY, node_count=8, max_peers=4, holder_count=2, runner=parallel)
    assert (fig5.series, fig8.series) == fastpath_results


def _replication_figure_observables(runner) -> tuple:
    """The replication figure under the churn fault plan: every
    per-trial observable, all three schemes in the same sweep."""
    from repro.eval.replication import figure_replication

    params = FigureParams(objects_per_node=0, queries=2, seed=0)
    result = figure_replication(
        params,
        node_count=8,
        churn_rates=(0.0, 0.3),
        runner=runner,
    )
    trials = figure_replication.last_trials
    return (
        result.series,
        [
            (
                t["scheme"],
                t["rate"],
                tuple(t["recalls"]),
                t["cached_queries"],
                t["messages_per_query"],
                t["bytes_per_query"],
                t["setup_packets"],
                t["setup_bytes"],
                t["bytes_carried"],
                t["packets_delivered"],
                tuple(sorted(t["drops_by_reason"].items())),
                t["degraded_queries"],
                tuple(sorted(t["faults_applied"].items())),
                tuple(sorted(t["replication"].items())),
            )
            for t in trials
        ],
    )


# ---------------------------------------------------------------------------
# Sharded kernel: REPRO_SHARDS must be invisible at any shard count
# ---------------------------------------------------------------------------


SHARDS_ENV_VAR = "REPRO_SHARDS"
SHARD_MODE_ENV_VAR = "REPRO_SHARD_MODE"


def test_shards_off_and_one_bitidentical_to_serial(monkeypatch):
    # "off" (and "1") are the serial kernel with zero sharding overlay:
    # the env read happens in build_network, so the entire workload —
    # bytes, hops, packet totals — must be untouched.
    monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
    drive, flood = _drive_deployment(), _flood_observables()
    monkeypatch.setenv(SHARDS_ENV_VAR, "off")
    assert (_drive_deployment(), _flood_observables()) == (drive, flood)
    monkeypatch.setenv(SHARDS_ENV_VAR, "1")
    assert (_drive_deployment(), _flood_observables()) == (drive, flood)


def test_wire_bytes_and_hops_identical_sharded_vs_serial(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
    serial = _drive_deployment()
    for shards in ("2", "4"):
        monkeypatch.setenv(SHARDS_ENV_VAR, shards)
        assert _drive_deployment() == serial


def test_32_node_flood_identical_sharded_vs_serial(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
    serial = _flood_observables()
    for shards in ("2", "4"):
        for mode in ("hash", "locality"):
            monkeypatch.setenv(SHARDS_ENV_VAR, shards)
            monkeypatch.setenv(SHARD_MODE_ENV_VAR, mode)
            assert _flood_observables() == serial


def test_series_identical_under_sharded_kernel(monkeypatch, fastpath_results):
    # Figures 5a and 8a: reconfiguration, StorM scans, agent shipping —
    # the full stack rides the lockstep sharded executor bit-exactly.
    for shards in ("2", "4"):
        monkeypatch.setenv(SHARDS_ENV_VAR, shards)
        assert _run_figures() == fastpath_results


def test_faulted_series_identical_under_sharded_kernel(monkeypatch):
    # Churn with live fault injection: crashes, outages, partitions and
    # latency changes fire mid-window, and the global-clock broadcast
    # keeps every shard anchored at serial time.
    monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
    serial = _faulted_observables(None)
    for shards in ("2", "4"):
        monkeypatch.setenv(SHARDS_ENV_VAR, shards)
        assert _faulted_observables(None) == serial


def test_1k_node_flood_identical_sharded_vs_serial(monkeypatch):
    # The acceptance workload at figure scale: a 1000-node random-graph
    # flood with per-edge latency jitter, per-host bytes compared.
    from repro.eval.scaling import _flood_deployment, _observables

    def flood(shards=None):
        deployment = _flood_deployment(1000, seed=0, shards=shards)
        deployment.base.issue_query("needle")
        deployment.sim.run()
        return _observables(deployment.network)

    monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
    serial = flood()
    for shards in (2, 4):
        assert flood(shards=shards) == serial


def test_replication_figure_self_identical_serial_vs_parallel():
    # Offers, pushes, invalidations, cache hits and replica answers all
    # ride the same seeded timeline; the sweep must replay
    # bit-identically whichever runner executes it.
    default = _replication_figure_observables(None)
    assert _replication_figure_observables(ExperimentRunner()) == default
    assert (
        _replication_figure_observables(ParallelExperimentRunner(jobs=2))
        == default
    )
