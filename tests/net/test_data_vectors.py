"""Golden wire vectors for the data-plane streaming codec.

``tests/net/vectors/data_frames.json`` stores the canonical frame for
each data-registered message's sample — the data-plane twin of
``test_wire_vectors.py``.  Any layout drift fails here with a readable
diff; intentional changes must bump
:data:`~repro.net.datacodec.WIRE_FORMAT_VERSION` and regenerate with
``REPRO_REWRITE_VECTORS=1``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.net.datacodec import (
    WIRE_FORMAT_VERSION,
    decode_message,
    encode_message,
    load_registrations,
    registered_specs,
)

from .test_wire_vectors import REWRITE_ENV_VAR, _drift_report, rewrite_requested

load_registrations()

VECTORS_PATH = Path(__file__).parent / "vectors" / "data_frames.json"


def current_vectors() -> dict:
    """The vector document the data registry produces right now."""
    return {
        "wire_format_version": WIRE_FORMAT_VERSION,
        "frames": {
            spec.name: {
                "type_id": f"{spec.type_id:#06x}",
                "sample": repr(spec.sample()),
                "frame_hex": encode_message(spec.sample()).hex(),
            }
            for spec in registered_specs()
        },
    }


def golden_vectors() -> dict:
    return json.loads(VECTORS_PATH.read_text())


def test_golden_vectors_match_registry():
    current = current_vectors()
    if rewrite_requested():
        VECTORS_PATH.parent.mkdir(parents=True, exist_ok=True)
        VECTORS_PATH.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"rewrote {VECTORS_PATH} ({REWRITE_ENV_VAR} set)")
    drift = _drift_report(golden_vectors(), current)
    assert not drift, (
        "data wire format drifted without a version bump.\n"
        "If this change is intentional: bump WIRE_FORMAT_VERSION in "
        "repro/net/datacodec.py and regenerate the vectors with "
        f"{REWRITE_ENV_VAR}=1.\n" + "\n".join(drift)
    )


def test_golden_frames_decode_to_their_samples():
    """The decoder accepts the *committed* bytes, not just fresh encodes."""
    if rewrite_requested():
        pytest.skip("vectors are being rewritten")
    golden = golden_vectors()
    by_name = {spec.name: spec for spec in registered_specs()}
    for name, entry in golden["frames"].items():
        spec = by_name[name]
        decoded = decode_message(bytes.fromhex(entry["frame_hex"]))
        assert decoded == spec.sample(), name


def test_golden_vectors_carry_the_current_version():
    if rewrite_requested():
        pytest.skip("vectors are being rewritten")
    assert golden_vectors()["wire_format_version"] == WIRE_FORMAT_VERSION
