"""Data-plane streaming codec: registry, framing, batching, laziness.

The conformance battery from ``conformance.py`` runs here against
``repro.net.datacodec`` — same fault classes, larger frames, plus the
lazy-materialization twist: a :class:`BatchedAnswers` frame with corrupt
record *contents* decodes cleanly (the boundaries are checked eagerly)
and must surface its :class:`WireDecodeError` at first materialization.
"""

from __future__ import annotations

import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agents.envelope import AgentEnvelope
from repro.agents.messages import (
    ANSWER_FIELDS,
    AnswerItem,
    AnswerMessage,
    BatchedAnswers,
    _sample_answer,
)
from repro.core.sharing import FetchReply
from repro.errors import WireCodecError, WireDecodeError, WireEncodeError
from repro.ids import BPID, QueryId
from repro.net import codec as wire
from repro.net import datacodec as data
from repro.net.address import IPAddress
from repro.storm.heapfile import RecordId

from .conformance import CodecConformance, _spec_id
from .test_codec import _strategy_for

data.load_registrations()


class TestDataCodecConformance(CodecConformance):
    """The full truncation/bit-flip/fuzz battery over every data frame."""

    codec = data

    @pytest.fixture(params=data.registered_specs(), ids=_spec_id)
    def spec(self, request):
        return request.param

    def _force(self, decoded):
        if isinstance(decoded, BatchedAnswers):
            decoded.answers  # deferred record corruption raises here
        return decoded


# ---------------------------------------------------------------------------
# Mode selection
# ---------------------------------------------------------------------------


def test_data_mode_defaults_to_stream(monkeypatch):
    monkeypatch.delenv(data.WIRE_DATA_ENV_VAR, raising=False)
    assert data.wire_data_mode() == data.DATA_STREAM


def test_data_mode_normalizes_case_and_whitespace(monkeypatch):
    monkeypatch.setenv(data.WIRE_DATA_ENV_VAR, "  PICKLE ")
    assert data.wire_data_mode() == data.DATA_PICKLE


def test_data_mode_empty_value_means_default(monkeypatch):
    monkeypatch.setenv(data.WIRE_DATA_ENV_VAR, "")
    assert data.wire_data_mode() == data.DATA_STREAM


def test_data_mode_rejects_unknown_values(monkeypatch):
    monkeypatch.setenv(data.WIRE_DATA_ENV_VAR, "msgpack")
    with pytest.raises(WireCodecError, match="msgpack"):
        data.wire_data_mode()


# ---------------------------------------------------------------------------
# Registry / streamable gating
# ---------------------------------------------------------------------------


def test_unregistered_type_is_not_encodable():
    assert data.try_encode(("not", "registered")) is None
    with pytest.raises(WireEncodeError, match="not data-registered"):
        data.encode_message(("not", "registered"))


def test_stateonly_envelope_is_not_streamable():
    """Envelopes without source stay on the compact control codec."""
    spec = data.lookup(AgentEnvelope)
    sourced = spec.sample()
    stateonly = sourced.with_source(None)
    assert spec.accepts(sourced)
    assert not spec.accepts(stateonly)
    assert data.try_encode(stateonly) is None
    with pytest.raises(WireEncodeError, match="not streamable"):
        data.encode_message(stateonly)


def test_oversized_value_falls_back_not_raises():
    """A by-value oversize routes to pickle+gzip via try_encode -> None;
    the decision reads only the message, so both modes agree on it."""
    huge = FetchReply(
        token=1,
        rid=RecordId(0, 0),
        payload=b"\x00" * (data.MAX_FRAME_BYTES + 1),
        found=True,
    )
    assert data.try_encode(huge) is None
    with pytest.raises(WireEncodeError):
        data.encode_message(huge)


def test_type_id_collision_rejected():
    with pytest.raises(WireCodecError, match="already registered"):
        data.register(
            FetchReply, 0x1001, (), sample=lambda: None
        )  # 0x1001 is AnswerMessage's


def test_pack_body_requires_unpack_body():
    with pytest.raises(WireCodecError, match="together"):
        data.register(
            tuple, 0x1FFF, (), sample=tuple, pack_body=lambda m, out: None
        )


# ---------------------------------------------------------------------------
# Compressed-source field
# ---------------------------------------------------------------------------


def test_compressed_source_round_trips_and_caches():
    source = "class CacheProbe:\n    marker = 'x' * 40\n"
    before = dict(data._CompressedSource._cache)
    out = bytearray()
    data.COMPRESSED_SOURCE.pack(source, out)
    out2 = bytearray()
    data.COMPRESSED_SOURCE.pack(source, out2)
    assert bytes(out) == bytes(out2)
    value, offset = data.COMPRESSED_SOURCE.unpack(bytes(out), 0)
    assert value == source
    assert offset == len(out)
    added = {
        k: v for k, v in data._CompressedSource._cache.items() if k not in before
    }
    assert len(added) == 1  # one digest entry for one distinct source


def test_compressed_source_rejects_corrupt_zlib():
    out = bytearray()
    data.COMPRESSED_SOURCE.pack("class X:\n    pass\n", out)
    corrupted = bytearray(out)
    corrupted[-1] ^= 0xFF
    with pytest.raises(WireDecodeError):
        data.COMPRESSED_SOURCE.unpack(bytes(corrupted), 0)


def test_compressed_source_rejects_length_lie():
    source = "class Y:\n    pass\n"
    blob = zlib.compress(source.encode(), 6)
    lying = bytearray()
    lying += wire.U32._struct.pack(len(source.encode()) + 1)  # wrong raw len
    lying += wire.U32._struct.pack(len(blob))
    lying += blob
    with pytest.raises(WireDecodeError, match="inflated"):
        data.COMPRESSED_SOURCE.unpack(bytes(lying), 0)


def test_sourced_envelope_frame_beats_naive_source_bytes():
    """The whole point of COMPRESSED_SOURCE: class text travels deflated."""
    spec = data.lookup(AgentEnvelope)
    envelope = spec.sample().with_source("def run(self, node):\n    pass\n" * 50)
    frame = data.encode_message(envelope)
    assert len(frame) < len(envelope.source.encode())


# ---------------------------------------------------------------------------
# BatchedAnswers: value semantics + lazy decode
# ---------------------------------------------------------------------------


def _answer(serial: int, items: int = 1) -> AnswerMessage:
    origin = BPID("10.0.0.1", 7)
    return AnswerMessage(
        query_id=QueryId(origin, serial),
        responder=BPID("10.0.0.2", 9),
        responder_address=IPAddress("10.0.4.9"),
        hops=1,
        items=tuple(
            AnswerItem(
                rid=RecordId(serial, i), keywords=("k",), size=4, payload=b"data"
            )
            for i in range(items)
        ),
    )


@pytest.mark.parametrize("count", [0, 1, 2, 7])
def test_batch_round_trips(count):
    batch = BatchedAnswers([_answer(i) for i in range(count)])
    decoded = data.decode_message(data.encode_message(batch))
    assert isinstance(decoded, BatchedAnswers)
    assert decoded == batch
    assert len(decoded) == count
    assert list(decoded) == list(batch.answers)


def test_decoded_batch_is_lazy_until_read():
    frame = data.encode_message(BatchedAnswers([_answer(1), _answer(2)]))
    decoded = data.decode_message(frame)
    assert not decoded.materialized
    assert len(decoded) == 2  # record count comes from the boundaries
    assert not decoded.materialized
    decoded.answers
    assert decoded.materialized


def test_corrupt_record_contents_raise_at_materialization():
    frame = bytearray(data.encode_message(BatchedAnswers([_answer(1)])))
    # The last item's opt(BYTES) payload field ends the record: presence
    # byte, u32 length, then b"data".  An invalid presence byte corrupts
    # the record *contents* while every boundary stays intact.
    frame[-9] = 2
    decoded = data.decode_message(bytes(frame))
    assert isinstance(decoded, BatchedAnswers)  # boundaries were fine
    with pytest.raises(WireDecodeError):
        decoded.answers


def test_corrupt_record_boundary_raises_at_decode():
    frame = bytearray(data.encode_message(BatchedAnswers([_answer(1)])))
    # The u32 record length sits right after the header's u16 count.
    offset = data.HEADER_SIZE + 2
    frame[offset:offset + 4] = (0xFFFF).to_bytes(4, "big")
    with pytest.raises(WireDecodeError, match="overruns"):
        data.decode_message(bytes(frame))


def test_batch_pickles_by_value():
    import pickle

    batch = data.decode_message(
        data.encode_message(BatchedAnswers([_answer(1), _answer(2)]))
    )
    clone = pickle.loads(pickle.dumps(batch))
    assert clone == batch
    assert clone.materialized  # pickle ships values, not memoryviews


def _field_strategy(field_codec) -> st.SearchStrategy:
    """Like test_codec._strategy_for, plus the data-plane address union."""
    if field_codec is data.ADDRESS_CODEC:
        return st.builds(IPAddress, st.text(max_size=16)) | st.tuples(
            st.text(max_size=16), st.integers(0, 0xFFFF)
        )
    return _strategy_for(field_codec)


def test_address_codec_round_trips_both_shapes():
    for value in (IPAddress("10.0.4.9"), ("127.0.0.1", 45301)):
        out = bytearray()
        data.ADDRESS_CODEC.pack(value, out)
        decoded, offset = data.ADDRESS_CODEC.unpack(bytes(out), 0)
        assert decoded == value and offset == len(out)


def test_live_shaped_answer_streams():
    """Answers built by the live runtime (tuple addresses) must stream."""
    answer = AnswerMessage(
        query_id=QueryId(BPID("live", 0), 1),
        responder=BPID("live", 1),
        responder_address=("127.0.0.1", 45301),
        hops=1,
        items=(AnswerItem(rid=RecordId(0, 0), keywords=("k",), size=1, payload=b"x"),),
    )
    frame = data.try_encode(answer)
    assert frame is not None
    assert data.decode_message(frame) == answer


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data_=st.data())
def test_batch_round_trip_property(data_):
    """0, 1 and many items, arbitrary field values, byte-exact round trip."""
    fields = {name: _field_strategy(codec) for name, codec in ANSWER_FIELDS}
    answer = st.fixed_dictionaries(fields).map(lambda kw: AnswerMessage(**kw))
    batch = BatchedAnswers(data_.draw(st.lists(answer, max_size=5), label="answers"))
    frame = data.encode_message(batch)
    assert frame[0] == data.FRAME_MAGIC
    decoded = data.decode_message(frame)
    assert decoded == batch
    assert data.encode_message(batch) == frame


# ---------------------------------------------------------------------------
# Top-k frames (0x1007 ScoredAnswer, 0x1008 TopKDigest)
# ---------------------------------------------------------------------------


def test_topk_frames_registered():
    from repro.agents.topk import ScoredAnswer, TopKDigest

    assert data.spec_for_id(0x1007).cls is ScoredAnswer
    assert data.spec_for_id(0x1008).cls is TopKDigest


def test_topk_frames_round_trip_scores_exactly():
    """TF scores are small-integer ratios; the F64 field must round-trip
    them bit-exactly or merge tie-breaks would drift across the wire."""
    from repro.agents.topk import _sample_scored_answer, _sample_topk_digest

    for sample in (_sample_scored_answer(), _sample_topk_digest()):
        frame = data.encode_message(sample)
        assert frame[0] == data.FRAME_MAGIC
        decoded = data.decode_message(frame)
        assert decoded == sample
        assert data.encode_message(decoded) == frame


def test_scored_answer_live_address_streams():
    from repro.agents.topk import ScoredAnswer, ScoredItem

    answer = ScoredAnswer(
        query_id=QueryId(BPID("live", 0), 1),
        responder=BPID("live", 1),
        responder_address=("127.0.0.1", 45302),
        hops=1,
        items=(
            ScoredItem(
                rid=RecordId(0, 0), keywords=("k",), size=1, score=1.0, payload=b"x"
            ),
        ),
        dominated_dropped=3,
    )
    frame = data.try_encode(answer)
    assert frame is not None
    assert data.decode_message(frame) == answer
