"""The sharded network fabric: directory, barrier routing, distribution."""

import pickle

import pytest

from repro.core.builder import build_network
from repro.core.config import BestPeerConfig
from repro.errors import BestPeerError, NetworkError
from repro.net import LinkModel, ShardCluster, run_distributed
from repro.net.message import Packet, _UNDECODED
from repro.topology import line, star
from repro.util.compression import IdentityCodec


def _cluster(shards=2, **kwargs):
    kwargs.setdefault("codec", IdentityCodec())
    return ShardCluster(shards, **kwargs)


class TestClusterFabric:
    def test_cross_shard_send_delivers_through_barrier(self):
        cluster = _cluster()
        a = cluster.networks[0].create_host("a")
        b = cluster.networks[1].create_host("b")
        received = []
        b.bind("t", lambda packet: received.append(packet.payload))
        a.send(b.address, "t", b"hello-across")
        cluster.sim.run()
        assert received == [b"hello-across"]
        assert cluster.sim.stats.messages == 1

    def test_local_send_stays_off_the_barrier(self):
        cluster = _cluster()
        a = cluster.networks[0].create_host("a")
        b = cluster.networks[0].create_host("b")
        received = []
        b.bind("t", lambda packet: received.append(packet.payload))
        a.send(b.address, "t", b"local")
        cluster.sim.run()
        assert received == [b"local"]
        assert cluster.sim.stats.messages == 0

    def test_duplicate_host_name_rejected_across_shards(self):
        cluster = _cluster()
        cluster.networks[0].create_host("a")
        with pytest.raises(NetworkError):
            cluster.networks[1].create_host("a")

    def test_view_hosts_preserve_creation_order(self):
        cluster = _cluster()
        cluster.networks[1].create_host("first")
        cluster.networks[0].create_host("second")
        cluster.networks[1].create_host("third")
        assert list(cluster.view.hosts) == ["first", "second", "third"]

    def test_view_host_at_resolves_any_shard(self):
        cluster = _cluster()
        a = cluster.networks[0].create_host("a")
        b = cluster.networks[1].create_host("b")
        assert cluster.view.host_at(a.address) is a
        assert cluster.view.host_at(b.address) is b
        assert cluster.networks[0].host_at(b.address) is b

    def test_cross_shard_partition_drops(self):
        cluster = _cluster()
        a = cluster.networks[0].create_host("a")
        b = cluster.networks[1].create_host("b")
        b.bind("t", lambda packet: None)
        cluster.view.partition([["a"], ["b"]])
        a.send(b.address, "t", b"blocked")
        cluster.sim.run()
        assert cluster.view.packets_dropped == 1
        assert cluster.view.drops_by_reason.get("partition") == 1
        cluster.view.heal_partition()
        a.send(b.address, "t", b"flows")
        cluster.sim.run()
        assert cluster.view.packets_delivered == 1

    def test_min_outbound_latency_ignores_intra_shard_overrides(self):
        cluster = _cluster(default_link=LinkModel(latency=0.01))
        a = cluster.networks[0].create_host("a")
        b = cluster.networks[0].create_host("b")
        c = cluster.networks[1].create_host("c")
        network = cluster.networks[0]
        # Intra-shard fast link: must not shrink the cluster lookahead.
        network.set_link(a.address, b.address, LinkModel(latency=0.0001))
        assert network.min_outbound_latency() == 0.01
        # Cross-shard fast link: must shrink it.
        network.set_link(a.address, c.address, LinkModel(latency=0.002))
        assert network.min_outbound_latency() == 0.002


class TestBuilderWiring:
    def test_shards_env_off_values(self, monkeypatch):
        from repro.core.builder import _resolve_shards

        for value in ("", "off", "none", "0"):
            monkeypatch.setenv("REPRO_SHARDS", value)
            assert _resolve_shards(None) is None
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert _resolve_shards(None) == 3
        assert _resolve_shards(2) == 2  # explicit argument wins

    def test_shards_env_garbage_rejected(self, monkeypatch):
        from repro.core.builder import _resolve_shards

        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.raises(BestPeerError):
            _resolve_shards(None)
        monkeypatch.setenv("REPRO_SHARDS", "-1")
        with pytest.raises(BestPeerError):
            _resolve_shards(None)

    def test_explicit_sim_with_shards_rejected(self):
        from repro.sim import Simulator

        with pytest.raises(BestPeerError):
            build_network(2, sim=Simulator(), shards=2)

    def test_explicit_sim_ignores_env_shards(self, monkeypatch):
        from repro.sim import Simulator

        monkeypatch.setenv("REPRO_SHARDS", "2")
        deployment = build_network(2, sim=Simulator(), topology=line(2))
        assert deployment.cluster is None
        assert deployment.shard_count == 1

    def test_sharded_build_pins_base_and_liglo_to_shard_zero(self):
        deployment = build_network(6, topology=star(6), shards=3)
        cluster = deployment.cluster
        assert cluster is not None
        assert deployment.shard_count == 3
        order = dict((name, shard) for shard, name in cluster.host_order)
        assert order["liglo-0"] == 0
        assert order["node-0"] == 0

    def test_sharded_deployment_runs_queries(self):
        deployment = build_network(
            6,
            config=BestPeerConfig(max_direct_peers=6, strategy="static"),
            topology=star(6),
            shards=2,
        )
        deployment.nodes[3].share(["needle"], b"payload")
        handle = deployment.base.issue_query("needle")
        deployment.sim.run()
        assert len(handle.answers) == 1


class TestPacketPickling:
    def test_decode_cache_does_not_travel(self):
        from repro.net.address import IPAddress

        packet = Packet(
            IPAddress("10.0.0.1"),
            IPAddress("10.0.0.2"),
            "t",
            16,
            0.0,
            pickle.dumps("payload"),
            "pickle",
        )
        assert packet.payload == "payload"  # decode, populating the cache
        clone = pickle.loads(pickle.dumps(packet))
        assert clone._decoded is _UNDECODED
        assert clone.payload == "payload"


class TestDistributed:
    def _flood(self, shards=None):
        deployment = build_network(
            12,
            config=BestPeerConfig(max_direct_peers=12, strategy="static"),
            topology=star(12),
            shards=shards,
        )
        deployment.nodes[3].share(["needle"], b"payload-a")
        deployment.nodes[11].share(["needle"], b"payload-b")
        deployment.base.issue_query("needle")
        return deployment

    def test_flood_matches_serial_observables(self):
        serial = self._flood()
        serial.sim.run()
        reference = (
            [host.bytes_sent for host in serial.network.hosts.values()],
            serial.network.bytes_carried,
            serial.network.packets_delivered,
            serial.network.packets_dropped,
        )
        deployment = self._flood(shards=2)
        report = run_distributed(deployment.cluster)
        merged = report.merged_counters()
        assert report.host_bytes() == reference[0]
        assert merged["bytes_carried"] == reference[1]
        assert merged["packets_delivered"] == reference[2]
        assert merged["packets_dropped"] == reference[3]
        assert report.windows >= 1
        assert report.messages >= 1
        assert len(report.busy_per_shard) == 2

    def test_extract_runs_inside_workers(self):
        deployment = self._flood(shards=2)
        report = run_distributed(
            deployment.cluster,
            extract=lambda shard: {"shard": shard},
        )
        assert report.extracts == [{"shard": 0}, {"shard": 1}]

    def test_until_bounds_the_run(self):
        deployment = self._flood(shards=2)
        report = run_distributed(deployment.cluster, until=0.001)
        assert report.final_now == 0.001
