"""Packet codec tagging, lazy decode, the pickle fallback, and the
drop-and-count behaviour of the delivery loop on corrupt frames —
on both the control and the data plane."""

from __future__ import annotations

import pytest

from repro.agents.messages import BatchedAnswers, _sample_answer
from repro.errors import WireDecodeError
from repro.ids import BPID
from repro.liglo.messages import PROTO_PING, Ping, Pong
from repro.net import datacodec
from repro.net.codec import (
    CODEC_COMPACT,
    CODEC_PICKLE,
    WIRE_CODEC_ENV_VAR,
    encode_message,
)
from repro.net.datacodec import CODEC_STREAM, WIRE_DATA_ENV_VAR
from repro.net.faults import FrameFaultInjector
from repro.net.message import PACKET_OVERHEAD_BYTES, Packet
from repro.net.network import Network
from repro.sim import Simulator
from repro.util.compression import DEFAULT_CODEC
from repro.util.serialization import WireEncoder, serialize
from repro.util.tracing import Tracer


@pytest.fixture(autouse=True)
def _default_codec_mode(monkeypatch):
    monkeypatch.delenv(WIRE_CODEC_ENV_VAR, raising=False)
    monkeypatch.delenv(WIRE_DATA_ENV_VAR, raising=False)


def _pair():
    sim = Simulator()
    network = Network(sim, tracer=Tracer())
    alice = network.create_host("alice")
    bob = network.create_host("bob")
    return sim, network, alice, bob


def _deliver_one(payload, protocol=PROTO_PING):
    """Send one payload alice->bob; returns (network, packet, wire_size)."""
    sim, network, alice, bob = _pair()
    received = []
    bob.bind(protocol, received.append)
    wire_size = alice.send(bob.address, protocol, payload)
    sim.run()
    assert len(received) == 1
    return network, received[0], wire_size


# ---------------------------------------------------------------------------
# Compact path
# ---------------------------------------------------------------------------


def test_registered_message_travels_as_compact_frame():
    ping = Ping(token=7)
    network, packet, wire_size = _deliver_one(ping)
    frame = encode_message(ping)
    assert packet.codec == CODEC_COMPACT
    assert packet.raw == frame
    assert packet.wire_size == len(frame) + PACKET_OVERHEAD_BYTES
    assert wire_size == packet.wire_size
    assert packet.payload == ping
    assert network.encoder.compact_frames == 1


def test_decoded_payload_is_an_independent_copy():
    pong = Pong(token=3, bpid=BPID("s", 1))
    _network, packet, _size = _deliver_one(pong)
    assert packet.payload == pong
    assert packet.payload is not pong  # hosts are separate machines


def test_lazy_decode_happens_once_and_is_cached():
    _network, packet, _size = _deliver_one(Ping(token=1))
    first = packet.payload
    assert packet.payload is first  # second access returns the memo


# ---------------------------------------------------------------------------
# Pickle fallback: mode switch and unregistered payloads
# ---------------------------------------------------------------------------


def test_pickle_mode_ships_pickle_but_charges_the_frame_size(monkeypatch):
    ping = Ping(token=7)
    compact_size = _deliver_one(ping)[2]

    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
    network, packet, pickle_size = _deliver_one(ping)
    assert packet.codec == CODEC_PICKLE
    assert packet.raw == serialize(ping)
    assert packet.payload == ping
    # The charged size must not depend on the selected codec.
    assert pickle_size == compact_size
    assert network.encoder.compact_frames == 1  # still took the compact sizing


def test_unregistered_payload_takes_gzip_pickle_in_both_modes(monkeypatch):
    payload = {"keyword": "music", "blob": b"x" * 400}
    raw = serialize(payload)
    charged = len(DEFAULT_CODEC.compress(raw))

    for mode in (None, "pickle", "compact"):
        if mode is None:
            monkeypatch.delenv(WIRE_CODEC_ENV_VAR, raising=False)
        else:
            monkeypatch.setenv(WIRE_CODEC_ENV_VAR, mode)
        network, packet, wire_size = _deliver_one(payload)
        assert packet.codec == CODEC_PICKLE
        assert packet.raw == raw
        assert wire_size == charged + PACKET_OVERHEAD_BYTES
        assert packet.payload == payload
        assert network.encoder.pickle_payloads == 1


def test_decode_never_needs_decompression():
    # Regression: the charged size uses gzip, but the transport bytes are
    # the *uncompressed* pickle — lazy decode must work on ``raw`` directly,
    # independent of the compression bypass that sized the packet.
    payload = {"blob": b"y" * 4096}  # very compressible: sizes diverge
    _network, packet, wire_size = _deliver_one(payload)
    assert wire_size < len(packet.raw)  # charged gzip size, shipped pickle
    assert packet.payload == payload  # plain deserialize, no decompress


# ---------------------------------------------------------------------------
# WireEncoder: per-call env check, cache keyed per codec
# ---------------------------------------------------------------------------


def test_encoder_cache_is_keyed_per_codec_mode(monkeypatch):
    encoder = WireEncoder(DEFAULT_CODEC)
    ping = Ping(token=9)

    compact = encoder.encode(ping)
    assert compact.codec == CODEC_COMPACT
    assert encoder.misses == 1

    # The mode is read from the environment on *every* call, so a flip
    # takes effect immediately — and may never serve the other mode's bytes.
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
    fallback = encoder.encode(ping)
    assert fallback.codec == CODEC_PICKLE
    assert fallback.raw == serialize(ping)
    assert fallback.compressed_size == compact.compressed_size
    assert encoder.misses == 2 and encoder.hits == 0

    # Both entries stay cached under their own key.
    assert encoder.encode(ping) is fallback
    monkeypatch.delenv(WIRE_CODEC_ENV_VAR)
    assert encoder.encode(ping) is compact
    assert encoder.hits == 2


def test_encoder_cache_capacity_zero_disables_memoization():
    encoder = WireEncoder(DEFAULT_CODEC, capacity=0)
    ping = Ping(token=9)
    first = encoder.encode(ping)
    second = encoder.encode(ping)
    assert first is not second
    assert first.raw == second.raw
    assert encoder.hits == 0 and encoder.misses == 2


# ---------------------------------------------------------------------------
# Corrupt frames in the delivery loop
# ---------------------------------------------------------------------------


def test_unknown_packet_codec_tag_raises():
    packet = Packet(
        src=None,
        dst=None,
        protocol="p",
        wire_size=1,
        sent_at=0.0,
        raw=b"",
        codec="zstd",
    )
    with pytest.raises(WireDecodeError, match="zstd"):
        packet.payload


@pytest.mark.parametrize("fault", ["truncated", "bit-flipped", "wrong-version"])
def test_corrupt_frame_is_dropped_counted_and_does_not_kill_the_host(fault):
    sim, network, alice, bob = _pair()
    received = []
    bob.bind(PROTO_PING, lambda packet: received.append(packet.payload))

    frame = encode_message(Ping(token=1))
    corrupted = FrameFaultInjector(seed=1).faults()[fault](frame)
    if fault == "bit-flipped":
        corrupted = bytes([frame[0] ^ 0x01]) + frame[1:]  # guaranteed-bad magic
    packet = Packet(
        src=alice.address,
        dst=bob.address,
        protocol=PROTO_PING,
        wire_size=len(corrupted) + PACKET_OVERHEAD_BYTES,
        sent_at=sim.now,
        raw=bytes(corrupted),
        codec=CODEC_COMPACT,
    )
    bob._receive(packet)
    sim.run()

    assert received == []  # the corrupt packet never reached the handler
    assert network.decode_errors == 1
    assert network.tracer.counter("net", "decode-error") == 1
    drops = [e for e in network.tracer.select("net", "drop")]
    assert any(e.get("reason") == "decode-error" for e in drops)

    # The host keeps serving: a well-formed message still goes through.
    alice.send(bob.address, PROTO_PING, Ping(token=2))
    sim.run()
    assert received == [Ping(token=2)]
    assert network.decode_errors == 1  # no new errors


def test_corrupt_pickle_payload_is_also_dropped_and_counted():
    sim, network, alice, bob = _pair()
    received = []
    bob.bind("blob", lambda packet: received.append(packet.payload))
    raw = serialize({"k": "v"})
    packet = Packet(
        src=alice.address,
        dst=bob.address,
        protocol="blob",
        wire_size=len(raw) + PACKET_OVERHEAD_BYTES,
        sent_at=sim.now,
        raw=raw,
        codec="no-such-codec",
    )
    bob._receive(packet)
    sim.run()
    assert received == []
    assert network.decode_errors == 1


def test_corrupt_pickle_bytes_raise_a_typed_decode_error():
    """Garbage under the pickle tag must surface as WireDecodeError (the
    delivery loop only counts typed errors), never a raw pickle exception."""
    packet = Packet(
        src=None,
        dst=None,
        protocol="blob",
        wire_size=10,
        sent_at=0.0,
        raw=b"\x02not a pickle at all",
        codec=CODEC_PICKLE,
    )
    with pytest.raises(WireDecodeError, match="corrupt pickle"):
        packet.payload


# ---------------------------------------------------------------------------
# Data plane: stream frames, per-plane counters, drop-and-count
# ---------------------------------------------------------------------------


def test_data_registered_message_travels_as_stream_frame():
    answer = _sample_answer()
    network, packet, wire_size = _deliver_one(answer, protocol="answer")
    frame = datacodec.encode_message(answer)
    assert packet.codec == CODEC_STREAM
    assert packet.raw == frame
    assert packet.wire_size == len(frame) + PACKET_OVERHEAD_BYTES
    assert wire_size == packet.wire_size
    assert packet.payload == answer
    assert network.encoder.data_frames == 1
    assert network.encoder.compact_frames == 0
    assert network.encoder.data_bytes == len(frame)


def test_data_pickle_mode_ships_pickle_but_charges_the_frame_size(monkeypatch):
    answer = _sample_answer()
    stream_size = _deliver_one(answer, protocol="answer")[2]

    monkeypatch.setenv(WIRE_DATA_ENV_VAR, "pickle")
    network, packet, pickle_size = _deliver_one(answer, protocol="answer")
    assert packet.codec == CODEC_PICKLE
    assert packet.raw == serialize(answer)
    assert packet.payload == answer
    # The charged size must not depend on the selected data codec.
    assert pickle_size == stream_size
    assert network.encoder.data_frames == 1  # still took the stream sizing


def test_encoder_cache_is_keyed_per_data_mode(monkeypatch):
    encoder = WireEncoder(DEFAULT_CODEC)
    answer = _sample_answer()

    stream = encoder.encode(answer)
    assert stream.codec == CODEC_STREAM

    monkeypatch.setenv(WIRE_DATA_ENV_VAR, "pickle")
    fallback = encoder.encode(answer)
    assert fallback.codec == CODEC_PICKLE
    assert fallback.compressed_size == stream.compressed_size
    assert encoder.misses == 2 and encoder.hits == 0

    assert encoder.encode(answer) is fallback
    monkeypatch.delenv(WIRE_DATA_ENV_VAR)
    assert encoder.encode(answer) is stream
    assert encoder.hits == 2


@pytest.mark.parametrize("fault", ["truncated", "bit-flipped", "wrong-version"])
def test_corrupt_data_frame_is_dropped_and_counted(fault):
    sim, network, alice, bob = _pair()
    received = []
    bob.bind("answer", lambda packet: received.append(packet.payload))

    frame = datacodec.encode_message(_sample_answer())
    injector = FrameFaultInjector(seed=1, max_frame_bytes=datacodec.MAX_FRAME_BYTES)
    corrupted = injector.faults()[fault](frame)
    if fault == "bit-flipped":
        corrupted = bytes([frame[0] ^ 0x01]) + frame[1:]  # guaranteed-bad magic
    packet = Packet(
        src=alice.address,
        dst=bob.address,
        protocol="answer",
        wire_size=len(corrupted) + PACKET_OVERHEAD_BYTES,
        sent_at=sim.now,
        raw=bytes(corrupted),
        codec=CODEC_STREAM,
    )
    bob._receive(packet)
    sim.run()

    assert received == []
    assert network.decode_errors == 1
    assert network.tracer.counter("net", "decode-error") == 1

    # The host keeps serving data frames afterwards.
    alice.send(bob.address, "answer", _sample_answer(2))
    sim.run()
    assert received == [_sample_answer(2)]
    assert network.decode_errors == 1


def test_lazy_batch_corruption_is_counted_when_the_handler_reads_it():
    """Record-level corruption passes decode_message (boundaries are
    fine) and must still land in decode_errors when the handler
    materializes the batch — the deferred half of drop-don't-crash."""
    sim, network, alice, bob = _pair()
    received = []
    bob.bind("answer", lambda packet: received.append(packet.payload.answers))

    frame = bytearray(
        datacodec.encode_message(BatchedAnswers([_sample_answer(1)]))
    )
    frame[-1] = 2  # the sample's trailing opt-presence byte: must be 0/1
    packet = Packet(
        src=alice.address,
        dst=bob.address,
        protocol="answer",
        wire_size=len(frame) + PACKET_OVERHEAD_BYTES,
        sent_at=sim.now,
        raw=bytes(frame),
        codec=CODEC_STREAM,
    )
    bob._receive(packet)
    sim.run()
    assert received == []
    assert network.decode_errors == 1
