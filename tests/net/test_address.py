"""Tests for the DHCP-like address pool."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressPoolExhausted
from repro.net.address import AddressPool, IPAddress


class TestAddressPool:
    def test_leases_are_distinct(self):
        pool = AddressPool(size=100)
        addresses = [pool.lease() for _ in range(100)]
        assert len(set(addresses)) == 100

    def test_exhaustion_raises(self):
        pool = AddressPool(size=2)
        pool.lease()
        pool.lease()
        with pytest.raises(AddressPoolExhausted):
            pool.lease()

    def test_release_then_lease_gives_different_address(self):
        """Reconnecting hosts should usually see a *new* address."""
        pool = AddressPool(size=16)
        first = pool.lease()
        pool.release(first)
        second = pool.lease()
        assert second != first

    def test_released_address_eventually_reused(self):
        pool = AddressPool(size=4)
        first = pool.lease()
        pool.release(first)
        seen = {pool.lease() for _ in range(3)}
        pool_is_full = pool.leased_count == 3
        assert pool_is_full
        # The fourth lease must wrap around to the released slot.
        assert pool.lease() == first or first in seen

    def test_release_unleased_raises(self):
        pool = AddressPool()
        with pytest.raises(ValueError):
            pool.release(IPAddress("10.0.0.0"))

    def test_release_foreign_address_raises(self):
        pool = AddressPool(prefix="10.0")
        with pytest.raises(ValueError):
            pool.release(IPAddress("192.168.0.1"))

    def test_is_leased(self):
        pool = AddressPool()
        address = pool.lease()
        assert pool.is_leased(address)
        pool.release(address)
        assert not pool.is_leased(address)
        assert not pool.is_leased(IPAddress("bogus"))

    def test_address_format(self):
        pool = AddressPool(prefix="10.9", size=300)
        first = pool.lease()
        assert first.value == "10.9.0.0"
        for _ in range(255):
            last = pool.lease()
        assert last.value == "10.9.0.255"
        assert pool.lease().value == "10.9.1.0"

    def test_size_validation(self):
        with pytest.raises(ValueError):
            AddressPool(size=0)
        with pytest.raises(ValueError):
            AddressPool(size=100_000)

    @given(st.integers(min_value=1, max_value=200))
    def test_lease_release_cycles_never_collide(self, cycles):
        pool = AddressPool(size=8)
        held: list[IPAddress] = []
        for i in range(cycles):
            if len(held) == 8 or (held and i % 3 == 0):
                pool.release(held.pop(0))
            else:
                address = pool.lease()
                assert address not in held
                held.append(address)
