"""Tests for hosts and the network fabric."""

import pytest

from repro.errors import HostOffline, NetworkError, UnknownProtocolError
from repro.net import LinkModel, Network
from repro.net.message import PACKET_OVERHEAD_BYTES
from repro.sim import Simulator
from repro.util.compression import IdentityCodec
from repro.util.serialization import serialize
from repro.util.tracing import Tracer


def make_network(**kwargs):
    sim = Simulator()
    return sim, Network(sim, tracer=Tracer(), **kwargs)


class TestDelivery:
    def test_payload_arrives_intact(self):
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b")
        received = []
        b.bind("test", lambda packet: received.append(packet.payload))
        a.send(b.address, "test", {"keyword": "jazz"})
        sim.run()
        assert received == [{"keyword": "jazz"}]

    def test_wire_size_includes_overhead_and_compression(self):
        sim, net = make_network(codec=IdentityCodec())
        a = net.create_host("a")
        b = net.create_host("b")
        b.bind("test", lambda packet: None)
        payload = {"data": "x" * 100}
        size = a.send(b.address, "test", payload)
        assert size == len(serialize(payload)) + PACKET_OVERHEAD_BYTES
        sim.run()

    def test_delivery_takes_transmission_plus_latency(self):
        sim, net = make_network(
            codec=IdentityCodec(),
            default_link=LinkModel(latency=0.01, bandwidth=1000.0),
        )
        a = net.create_host("a", dispatch_time=0.0)
        b = net.create_host("b", dispatch_time=0.0)
        arrival = []
        b.bind("test", lambda packet: arrival.append(sim.now))
        size = a.send(b.address, "test", b"payload")
        sim.run()
        assert arrival[0] == pytest.approx(size / 1000.0 + 0.01)

    def test_sender_nic_serializes_transmissions(self):
        """Two back-to-back sends must not overlap on the uplink."""
        sim, net = make_network(
            codec=IdentityCodec(),
            default_link=LinkModel(latency=0.0, bandwidth=100.0),
        )
        a = net.create_host("a", dispatch_time=0.0)
        b = net.create_host("b", dispatch_time=0.0)
        arrivals = []
        b.bind("test", lambda packet: arrivals.append(sim.now))
        size1 = a.send(b.address, "test", "first")
        size2 = a.send(b.address, "test", "second")
        sim.run()
        assert arrivals[0] == pytest.approx(size1 / 100.0)
        assert arrivals[1] == pytest.approx((size1 + size2) / 100.0)

    def test_single_thread_cpu_serializes_handlers(self):
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b", cpu_threads=1, dispatch_time=0.0)
        done = []

        def slow_handler(packet):
            b.cpu.submit(1.0, done.append, sim.now)

        b.bind("work", slow_handler)
        a.send(b.address, "work", 1)
        a.send(b.address, "work", 2)
        sim.run()
        assert len(done) == 2
        assert done[1] - done[0] == pytest.approx(1.0)

    def test_multi_thread_cpu_overlaps_handlers(self):
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b", cpu_threads=2, dispatch_time=0.0)
        done = []

        def slow_handler(packet):
            b.cpu.submit(1.0, done.append, sim.now)

        b.bind("work", slow_handler)
        a.send(b.address, "work", 1)
        a.send(b.address, "work", 2)
        sim.run()
        assert len(done) == 2
        assert done[1] - done[0] < 0.5

    def test_unknown_protocol_raises(self):
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b")
        a.send(b.address, "nobody-listens", None)
        with pytest.raises(UnknownProtocolError):
            sim.run()


class TestChurn:
    def test_offline_sender_raises(self):
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b")
        b_address = b.address
        a.disconnect()
        with pytest.raises(HostOffline):
            a.send(b_address, "test", None)

    def test_packet_to_disconnected_host_drops(self):
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b")
        b.bind("test", lambda packet: pytest.fail("must not deliver"))
        target = b.address
        a.send(target, "test", None)
        b.disconnect()
        sim.run()
        assert net.packets_dropped == 1
        assert net.packets_delivered == 0

    def test_reconnect_changes_address(self):
        sim, net = make_network()
        a = net.create_host("a")
        old = a.address
        a.disconnect()
        new = a.connect()
        assert new != old
        assert net.host_at(new) is a
        assert net.host_at(old) is None

    def test_packet_to_stale_address_drops_even_if_reassigned(self):
        """A packet addressed to a host's *old* IP must not reach it."""
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b")
        old = b.address
        b.disconnect()
        b.connect()
        b.bind("test", lambda packet: pytest.fail("must not deliver"))
        a.send(old, "test", None)
        sim.run()
        assert net.packets_dropped == 1

    def test_double_connect_raises(self):
        _, net = make_network()
        a = net.create_host("a")
        with pytest.raises(NetworkError):
            a.connect()

    def test_double_disconnect_raises(self):
        _, net = make_network()
        a = net.create_host("a")
        a.disconnect()
        with pytest.raises(NetworkError):
            a.disconnect()


class TestNetworkAdmin:
    def test_duplicate_host_name_rejected(self):
        _, net = make_network()
        net.create_host("a")
        with pytest.raises(NetworkError):
            net.create_host("a")

    def test_double_bind_rejected(self):
        _, net = make_network()
        a = net.create_host("a")
        a.bind("p", lambda packet: None)
        with pytest.raises(NetworkError):
            a.bind("p", lambda packet: None)

    def test_unbind_allows_rebind(self):
        _, net = make_network()
        a = net.create_host("a")
        a.bind("p", lambda packet: None)
        a.unbind("p")
        a.bind("p", lambda packet: None)

    def test_per_pair_link_override(self):
        sim, net = make_network(codec=IdentityCodec())
        a = net.create_host("a", dispatch_time=0.0)
        b = net.create_host("b", dispatch_time=0.0)
        slow = LinkModel(latency=5.0, bandwidth=1e9)
        net.set_link(a.address, b.address, slow)
        arrivals = []
        b.bind("test", lambda packet: arrivals.append(sim.now))
        a.send(b.address, "test", None)
        sim.run()
        assert arrivals[0] == pytest.approx(5.0, abs=0.01)

    def test_counters(self):
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b")
        b.bind("test", lambda packet: None)
        size = a.send(b.address, "test", "hello")
        sim.run()
        assert a.messages_sent == 1
        assert a.bytes_sent == size
        assert b.messages_received == 1
        assert net.bytes_carried == size
        assert net.packets_delivered == 1

    def test_trace_records_send_and_deliver(self):
        sim, net = make_network()
        a = net.create_host("a")
        b = net.create_host("b")
        b.bind("test", lambda packet: None)
        a.send(b.address, "test", None)
        sim.run()
        assert net.tracer.count("net", "send") == 1
        assert net.tracer.count("net", "deliver") == 1
