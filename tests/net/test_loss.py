"""Tests for packet-loss failure injection."""

import pytest

from repro.net import LinkModel, Network
from repro.sim import Simulator


def lossy_network(loss, seed=0):
    sim = Simulator()
    net = Network(
        sim,
        default_link=LinkModel(loss_probability=loss),
        loss_seed=seed,
    )
    return sim, net


class TestPacketLoss:
    def test_total_loss_delivers_nothing(self):
        sim, net = lossy_network(1.0)
        a = net.create_host("a")
        b = net.create_host("b")
        b.bind("t", lambda packet: pytest.fail("must not deliver"))
        for _ in range(5):
            a.send(b.address, "t", None)
        sim.run()
        assert net.packets_dropped == 5
        assert net.packets_delivered == 0

    def test_zero_loss_delivers_everything(self):
        sim, net = lossy_network(0.0)
        a = net.create_host("a")
        b = net.create_host("b")
        received = []
        b.bind("t", lambda packet: received.append(packet.payload))
        for i in range(20):
            a.send(b.address, "t", i)
        sim.run()
        assert len(received) == 20

    def test_partial_loss_is_deterministic_per_seed(self):
        def run(seed):
            sim, net = lossy_network(0.5, seed=seed)
            a = net.create_host("a")
            b = net.create_host("b")
            received = []
            b.bind("t", lambda packet: received.append(packet.payload))
            for i in range(40):
                a.send(b.address, "t", i)
            sim.run()
            return received

        assert run(seed=3) == run(seed=3)
        assert run(seed=3) != run(seed=4)

    def test_partial_loss_rate_plausible(self):
        sim, net = lossy_network(0.5, seed=1)
        a = net.create_host("a")
        b = net.create_host("b")
        received = []
        b.bind("t", lambda packet: received.append(packet.payload))
        for i in range(200):
            a.send(b.address, "t", i)
        sim.run()
        assert 60 <= len(received) <= 140  # ~50% with slack

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(loss_probability=1.5)
        with pytest.raises(ValueError):
            LinkModel(loss_probability=-0.1)


class TestBestPeerUnderLoss:
    def test_query_degrades_gracefully(self):
        """Lost agents/answers shrink the answer set but never crash."""
        from repro.agents.costs import AgentCosts
        from repro.core import BestPeerConfig, build_network
        from repro.topology import line

        config = BestPeerConfig(
            agent_costs=AgentCosts(
                class_install_time=0.002,
                state_install_time=0.001,
                execute_overhead=0.0,
                page_io_time=0.0,
                object_match_time=0.0,
            )
        )
        lossless = build_network(6, config=config, topology=line(6))
        for node in lossless.nodes[1:]:
            node.share(["k"], b"x")
        baseline = lossless.base.issue_query("k")
        lossless.sim.run()

        lossy = build_network(6, config=config, topology=line(6))
        for node in lossy.nodes[1:]:
            node.share(["k"], b"x")
        # Turn the loss on *after* the (reliable) join phase.
        lossy.network.default_link = LinkModel(loss_probability=0.3)
        handle = lossy.base.issue_query("k")
        lossy.sim.run()
        assert handle.network_answer_count <= baseline.network_answer_count
