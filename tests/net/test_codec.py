"""Compact wire codec: conformance battery, registry, codec switch, and
hypothesis round-trip properties over every registered message type."""

from __future__ import annotations

import struct
from dataclasses import dataclass

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import WireCodecError, WireDecodeError, WireEncodeError
from repro.net import codec as wire
from repro.net.codec import (
    CODEC_COMPACT,
    CODEC_PICKLE,
    FRAME_MAGIC,
    WIRE_CODEC_ENV_VAR,
    WIRE_FORMAT_VERSION,
    decode_message,
    encode_message,
    load_registrations,
    lookup,
    registered_specs,
    spec_for_id,
    try_encode,
    wire_codec_mode,
)

from .conformance import CodecConformance

load_registrations()


class TestRegisteredMessageConformance(CodecConformance):
    """The full battery over every registered control message."""


# ---------------------------------------------------------------------------
# Decoder edge cases not tied to one spec
# ---------------------------------------------------------------------------


def _header(magic=FRAME_MAGIC, version=WIRE_FORMAT_VERSION, type_id=0x0101) -> bytes:
    return struct.pack(">BBH", magic, version, type_id)


def test_empty_frame_raises():
    with pytest.raises(WireDecodeError, match="shorter than a header"):
        decode_message(b"")


def test_short_header_raises():
    with pytest.raises(WireDecodeError, match="shorter than a header"):
        decode_message(_header()[:3])


def test_bad_magic_raises():
    with pytest.raises(WireDecodeError, match="magic"):
        decode_message(_header(magic=0x1F) + b"\x00" * 8)


def test_unknown_type_id_raises():
    assert spec_for_id(0x7F7F) is None
    with pytest.raises(WireDecodeError, match="unknown message type id"):
        decode_message(_header(type_id=0x7F7F))


def test_unsupported_version_names_both_versions():
    with pytest.raises(WireDecodeError) as excinfo:
        decode_message(_header(version=WIRE_FORMAT_VERSION + 1) + b"\x00" * 8)
    assert str(WIRE_FORMAT_VERSION) in str(excinfo.value)
    assert str(WIRE_FORMAT_VERSION + 1) in str(excinfo.value)


# ---------------------------------------------------------------------------
# Registry rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _Probe:
    token: int


@pytest.fixture
def scratch_registry(monkeypatch):
    """Run registry mutations against a copy of the global tables."""
    monkeypatch.setattr(wire, "_BY_ID", dict(wire._BY_ID))
    monkeypatch.setattr(wire, "_BY_CLASS", dict(wire._BY_CLASS))


def test_register_rejects_out_of_range_ids(scratch_registry):
    for bad in (0, -1, 0x1_0000):
        with pytest.raises(WireCodecError, match="outside u16 range"):
            wire.register(
                _Probe, bad, (("token", wire.I64),), sample=lambda: _Probe(1)
            )


def test_register_rejects_duplicate_id_for_different_class(scratch_registry):
    taken = registered_specs()[0].type_id
    with pytest.raises(WireCodecError, match="already registered"):
        wire.register(
            _Probe, taken, (("token", wire.I64),), sample=lambda: _Probe(1)
        )


def test_register_same_class_again_is_a_refresh(scratch_registry):
    spec = wire.register(
        _Probe, 0x7F01, (("token", wire.I64),), sample=lambda: _Probe(1)
    )
    again = wire.register(
        _Probe, 0x7F01, (("token", wire.I64),), sample=lambda: _Probe(1)
    )
    assert wire.lookup(_Probe) is again
    assert spec.type_id == again.type_id


def test_registered_specs_are_sorted_and_unique():
    specs = registered_specs()
    ids = [spec.type_id for spec in specs]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)
    assert len({spec.cls for spec in specs}) == len(specs)


def test_lookup_round_trips_with_spec_for_id():
    for spec in registered_specs():
        assert lookup(spec.cls) is spec
        assert spec_for_id(spec.type_id) is spec


def test_unregistered_class_encode_raises_and_try_encode_declines():
    with pytest.raises(WireEncodeError, match="not registered"):
        encode_message({"not": "registered"})
    assert try_encode({"not": "registered"}) is None
    assert lookup(dict) is None


def test_field_overflow_falls_back_instead_of_crashing():
    from repro.liglo.messages import Ping

    oversized = Ping(token=2**70)  # does not fit i64
    with pytest.raises(WireEncodeError, match="does not fit"):
        encode_message(oversized)
    assert try_encode(oversized) is None  # pickle fallback, not an error


def test_non_compactable_instance_declines_compact_path():
    from repro.agents.envelope import AgentEnvelope

    spec = lookup(AgentEnvelope)
    sourced = spec.sample().with_source("class Probe:\n    pass\n")
    assert not spec.accepts(sourced)
    with pytest.raises(WireEncodeError, match="not compactable"):
        encode_message(sourced)
    assert try_encode(sourced) is None
    assert spec.accepts(spec.sample())


# ---------------------------------------------------------------------------
# The REPRO_WIRE_CODEC switch
# ---------------------------------------------------------------------------


def test_codec_mode_defaults_to_compact(monkeypatch):
    monkeypatch.delenv(WIRE_CODEC_ENV_VAR, raising=False)
    assert wire_codec_mode() == CODEC_COMPACT


def test_codec_mode_reads_environment_per_call(monkeypatch):
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "pickle")
    assert wire_codec_mode() == CODEC_PICKLE
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "compact")
    assert wire_codec_mode() == CODEC_COMPACT


def test_codec_mode_normalizes_case_and_whitespace(monkeypatch):
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "  PICKLE ")
    assert wire_codec_mode() == CODEC_PICKLE


def test_codec_mode_empty_value_means_default(monkeypatch):
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "")
    assert wire_codec_mode() == CODEC_COMPACT


def test_codec_mode_rejects_unknown_values(monkeypatch):
    monkeypatch.setenv(WIRE_CODEC_ENV_VAR, "zstd")
    with pytest.raises(WireCodecError, match="zstd"):
        wire_codec_mode()


# ---------------------------------------------------------------------------
# Hypothesis: round trip over the whole value space, not just samples
# ---------------------------------------------------------------------------


def _strategy_for(field_codec) -> st.SearchStrategy:
    """A value strategy matching one field codec's domain."""
    if field_codec is wire.U8:
        return st.integers(0, 0xFF)
    if field_codec is wire.U16:
        return st.integers(0, 0xFFFF)
    if field_codec is wire.U32:
        return st.integers(0, 0xFFFF_FFFF)
    if field_codec is wire.I32:
        return st.integers(-(2**31), 2**31 - 1)
    if field_codec is wire.I64:
        return st.integers(-(2**63), 2**63 - 1)
    if field_codec is wire.F64:
        return st.floats(allow_nan=False)
    if field_codec is wire.BOOL:
        return st.booleans()
    if field_codec is wire.STR:
        return st.text(max_size=48)
    if field_codec is wire.BYTES:
        return st.binary(max_size=96)
    if field_codec is wire.PICKLE_BLOB:
        scalar = st.integers() | st.text(max_size=12) | st.booleans() | st.none()
        return st.dictionaries(st.text(max_size=8), scalar, max_size=4)
    if isinstance(field_codec, wire._Optional):
        return st.none() | _strategy_for(field_codec.inner)
    if isinstance(field_codec, wire._Seq):
        return st.lists(_strategy_for(field_codec.inner), max_size=4).map(tuple)
    if isinstance(field_codec, wire._Pair):
        return st.tuples(
            _strategy_for(field_codec.first), _strategy_for(field_codec.second)
        )
    if isinstance(field_codec, wire._Composite):
        return st.builds(
            field_codec.build,
            *[_strategy_for(inner) for _attr, inner in field_codec.attrs],
        )
    raise AssertionError(f"no strategy for field codec {field_codec.name!r}")


def _message_strategy(spec) -> st.SearchStrategy:
    fields = {name: _strategy_for(codec) for name, codec in spec.fields}
    return st.fixed_dictionaries(fields).map(lambda kw: spec.cls(**kw)).filter(
        spec.accepts
    )


@pytest.mark.parametrize(
    "spec", registered_specs(), ids=lambda s: s.name.removeprefix("repro.")
)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_round_trip_property(spec, data):
    message = data.draw(_message_strategy(spec), label=spec.name)
    frame = encode_message(message)
    assert frame[0] == FRAME_MAGIC
    assert decode_message(frame) == message
    # Encoding is a pure function of the value.
    assert encode_message(message) == frame


@pytest.mark.parametrize(
    "spec", registered_specs(), ids=lambda s: s.name.removeprefix("repro.")
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_truncation_property(spec, data):
    """Any strict prefix of any valid frame is rejected, whatever the value."""
    message = data.draw(_message_strategy(spec), label=spec.name)
    frame = encode_message(message)
    keep = data.draw(st.integers(0, len(frame) - 1), label="keep")
    with pytest.raises(WireDecodeError):
        decode_message(frame[:keep])
