"""Reusable protocol-conformance battery for the wire codecs.

Subclass :class:`CodecConformance` in a test module and every registered
message type is driven through round-trip, header, truncation, bit-flip,
wrong-version, oversize and trailing-garbage checks.  The battery backs
two contracts:

* **round trip** — ``decode(encode(m)) == m`` for every registered
  sample, and encoding is deterministic;
* **strict decode** — every malformation a
  :class:`~repro.net.faults.FrameFaultInjector` can produce either
  raises a typed :class:`~repro.errors.WireDecodeError` or (for body
  bit flips that stay self-consistent) decodes into a *registered*
  message type.  Nothing else may escape the decoder.

The battery runs against the control codec by default; a subclass sets
``codec`` to another module with the same surface (``encode_message``,
``decode_message``, ``registered_specs``, ``spec_for_id``,
``FRAME_MAGIC``, ``WIRE_FORMAT_VERSION``, ``HEADER_SIZE``,
``MAX_FRAME_BYTES``) to drive a different frame format — the data-plane
battery in ``test_datacodec.py`` does exactly that.  Both frame formats
deliberately share the first four header bytes (magic, version, u16
type id), which the fixed bit-flip positions below rely on.
"""

from __future__ import annotations

import pytest

from repro.errors import WireDecodeError
from repro.net import codec as control_codec
from repro.net.codec import load_registrations
from repro.net.faults import FrameFaultInjector

load_registrations()


def _spec_id(spec) -> str:
    return spec.name.removeprefix("repro.")


class CodecConformance:
    """Mixin: parametrizes every test over all registered message specs."""

    #: the codec module under test; subclasses may point this at any
    #: module exposing the same encode/decode/registry surface
    codec = control_codec

    @pytest.fixture(params=control_codec.registered_specs(), ids=_spec_id)
    def spec(self, request):
        return request.param

    @pytest.fixture
    def frame(self, spec) -> bytes:
        return self.codec.encode_message(spec.sample())

    @pytest.fixture
    def injector(self) -> FrameFaultInjector:
        return FrameFaultInjector(seed=0, max_frame_bytes=self.codec.MAX_FRAME_BYTES)

    def _force(self, decoded):
        """Fully materialize a decoded message (lazy decoders override:
        deferred corruption must surface as WireDecodeError here)."""
        return decoded

    # -- round trip ---------------------------------------------------------

    def test_sample_round_trips(self, spec, frame):
        assert self.codec.decode_message(frame) == spec.sample()

    def test_encoding_is_deterministic(self, spec, frame):
        assert self.codec.encode_message(spec.sample()) == frame

    def test_frame_header(self, spec, frame):
        assert frame[0] == self.codec.FRAME_MAGIC
        assert frame[1] == self.codec.WIRE_FORMAT_VERSION
        assert int.from_bytes(frame[2:4], "big") == spec.type_id

    # -- fault injection ----------------------------------------------------

    def test_every_truncation_raises(self, frame, injector):
        for keep in range(len(frame)):
            with pytest.raises(WireDecodeError):
                self._force(self.codec.decode_message(injector.truncate(frame, keep=keep)))

    def test_magic_and_version_bit_flips_raise(self, frame, injector):
        for position in (0, 1):
            for bit in range(8):
                corrupted = injector.bit_flip(frame, position=position, bit=bit)
                with pytest.raises(WireDecodeError):
                    self._force(self.codec.decode_message(corrupted))

    def test_type_id_bit_flips_raise_or_alias_registered(self, spec, frame, injector):
        # A flipped type id usually misses the registry or mis-parses the
        # body; when the bytes happen to satisfy another layout, the result
        # must still be a *registered* type (never spec.cls itself).
        for position in (2, 3):
            for bit in range(8):
                corrupted = injector.bit_flip(frame, position=position, bit=bit)
                try:
                    decoded = self._force(self.codec.decode_message(corrupted))
                except WireDecodeError:
                    continue
                aliased = self.codec.spec_for_id(int.from_bytes(corrupted[2:4], "big"))
                assert aliased is not None
                assert type(decoded) is aliased.cls
                assert aliased.cls is not spec.cls

    def test_body_bit_flips_never_crash(self, frame, injector):
        registered = {s.cls for s in self.codec.registered_specs()}
        for position in range(self.codec.HEADER_SIZE, len(frame)):
            for bit in range(8):
                corrupted = injector.bit_flip(frame, position=position, bit=bit)
                try:
                    decoded = self._force(self.codec.decode_message(corrupted))
                except WireDecodeError:
                    continue  # the expected outcome for most flips
                assert (
                    self.codec.spec_for_id(int.from_bytes(corrupted[2:4], "big"))
                    is not None
                )
                assert type(decoded) in registered

    def test_wrong_version_raises(self, frame, injector):
        for version in (0, self.codec.WIRE_FORMAT_VERSION + 1, 0xFF):
            with pytest.raises(WireDecodeError, match="version"):
                self._force(
                    self.codec.decode_message(
                        injector.wrong_version(frame, version=version)
                    )
                )

    def test_oversized_frame_raises(self, frame, injector):
        with pytest.raises(WireDecodeError, match="oversized"):
            self._force(self.codec.decode_message(injector.oversize(frame)))

    def test_trailing_garbage_raises(self, frame, injector):
        with pytest.raises(WireDecodeError, match="trailing"):
            self._force(self.codec.decode_message(injector.trailing_garbage(frame)))

    def test_random_fault_battery(self, frame, injector):
        # Seeded random sweep across every fault class: nothing but
        # WireDecodeError (or a clean registered decode) may escape.
        registered = {s.cls for s in self.codec.registered_specs()}
        for _round in range(25):
            for name, fault in injector.faults().items():
                corrupted = fault(frame)
                try:
                    decoded = self._force(self.codec.decode_message(corrupted))
                except WireDecodeError:
                    continue
                assert name == "bit-flipped", f"{name} fault decoded cleanly"
                assert type(decoded) in registered
