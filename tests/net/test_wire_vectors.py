"""Golden wire vectors: the committed byte-exact form of every frame.

``tests/net/vectors/control_frames.json`` stores the canonical frame for
each registered message's sample.  Any layout drift — a reordered field,
a changed width, a reassigned type id — fails here with a readable diff
*before* it silently breaks cross-version interop.  Intentional changes
must bump :data:`~repro.net.codec.WIRE_FORMAT_VERSION` and regenerate
the file with ``REPRO_REWRITE_VECTORS=1``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.net.codec import (
    WIRE_FORMAT_VERSION,
    decode_message,
    encode_message,
    load_registrations,
    registered_specs,
)

load_registrations()

VECTORS_PATH = Path(__file__).parent / "vectors" / "control_frames.json"
REWRITE_ENV_VAR = "REPRO_REWRITE_VECTORS"


def current_vectors() -> dict:
    """The vector document the registry produces right now."""
    return {
        "wire_format_version": WIRE_FORMAT_VERSION,
        "frames": {
            spec.name: {
                "type_id": f"{spec.type_id:#06x}",
                "sample": repr(spec.sample()),
                "frame_hex": encode_message(spec.sample()).hex(),
            }
            for spec in registered_specs()
        },
    }


def golden_vectors() -> dict:
    return json.loads(VECTORS_PATH.read_text())


def rewrite_requested() -> bool:
    return bool(os.environ.get(REWRITE_ENV_VAR))


def _drift_report(golden: dict, current: dict) -> list[str]:
    """Human-readable description of every difference, empty when none."""
    lines: list[str] = []
    if golden["wire_format_version"] != current["wire_format_version"]:
        lines.append(
            f"wire format version: golden {golden['wire_format_version']} "
            f"!= current {current['wire_format_version']}"
        )
    golden_frames, current_frames = golden["frames"], current["frames"]
    for name in sorted(golden_frames.keys() - current_frames.keys()):
        lines.append(f"{name}: in golden vectors but no longer registered")
    for name in sorted(current_frames.keys() - golden_frames.keys()):
        lines.append(f"{name}: registered but missing from golden vectors")
    for name in sorted(golden_frames.keys() & current_frames.keys()):
        want, got = golden_frames[name], current_frames[name]
        if want["type_id"] != got["type_id"]:
            lines.append(
                f"{name}: type id changed {want['type_id']} -> {got['type_id']}"
            )
        if want["frame_hex"] != got["frame_hex"]:
            lines.append(
                f"{name}: frame bytes drifted\n"
                f"    golden  {want['frame_hex']}\n"
                f"    current {got['frame_hex']}"
            )
    return lines


def test_golden_vectors_match_registry():
    current = current_vectors()
    if rewrite_requested():
        VECTORS_PATH.parent.mkdir(parents=True, exist_ok=True)
        VECTORS_PATH.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"rewrote {VECTORS_PATH} ({REWRITE_ENV_VAR} set)")
    drift = _drift_report(golden_vectors(), current)
    assert not drift, (
        "wire format drifted without a version bump.\n"
        "If this change is intentional: bump WIRE_FORMAT_VERSION in "
        "repro/net/codec.py and regenerate the vectors with "
        f"{REWRITE_ENV_VAR}=1.\n" + "\n".join(drift)
    )


def test_golden_frames_decode_to_their_samples():
    """The decoder accepts the *committed* bytes, not just fresh encodes."""
    if rewrite_requested():
        pytest.skip("vectors are being rewritten")
    golden = golden_vectors()
    by_name = {spec.name: spec for spec in registered_specs()}
    for name, entry in golden["frames"].items():
        spec = by_name[name]
        decoded = decode_message(bytes.fromhex(entry["frame_hex"]))
        assert decoded == spec.sample(), name


def test_golden_vectors_carry_the_current_version():
    if rewrite_requested():
        pytest.skip("vectors are being rewritten")
    assert golden_vectors()["wire_format_version"] == WIRE_FORMAT_VERSION
