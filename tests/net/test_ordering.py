"""Message-ordering properties of the network fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import LinkModel, Network
from repro.sim import Simulator
from repro.util.compression import IdentityCodec


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=20))
def test_per_pair_delivery_is_fifo(payloads):
    """With one link model, packets between a pair never reorder:
    the sender NIC is FIFO and latency is constant."""
    sim = Simulator()
    net = Network(sim, codec=IdentityCodec())
    a = net.create_host("a")
    b = net.create_host("b")
    received = []
    b.bind("t", lambda packet: received.append(packet.payload))
    for payload in payloads:
        a.send(b.address, "t", payload)
    sim.run()
    assert received == payloads


def test_cross_pair_messages_can_interleave():
    """A slow transmission on one sender must not delay another sender."""
    sim = Simulator()
    net = Network(
        sim,
        codec=IdentityCodec(),
        default_link=LinkModel(latency=0.0, bandwidth=100.0),
    )
    slow = net.create_host("slow", dispatch_time=0.0)
    fast = net.create_host("fast", dispatch_time=0.0)
    sink = net.create_host("sink", dispatch_time=0.0)
    received = []
    sink.bind("t", lambda packet: received.append(packet.payload))
    slow.send(sink.address, "t", b"x" * 5000)  # ~50s of transmission
    fast.send(sink.address, "t", b"quick")
    sim.run()
    assert received[0] == b"quick"


def test_broadcast_fanout_serializes_on_sender_nic():
    sim = Simulator()
    net = Network(
        sim,
        codec=IdentityCodec(),
        default_link=LinkModel(latency=0.0, bandwidth=1000.0),
    )
    sender = net.create_host("sender", dispatch_time=0.0)
    arrival_times = {}
    receivers = []
    for i in range(5):
        receiver = net.create_host(f"r{i}", dispatch_time=0.0)
        receiver.bind(
            "t", lambda packet, name=f"r{i}": arrival_times.setdefault(name, sim.now)
        )
        receivers.append(receiver)
    wire_sizes = [
        sender.send(receiver.address, "t", b"y" * 920) for receiver in receivers
    ]
    per_message = wire_sizes[0] / 1000.0  # seconds on the 1000 B/s NIC
    sim.run()
    times = sorted(arrival_times.values())
    # Five equal transmissions leave one NIC back to back.
    for i, t in enumerate(times, start=1):
        assert t == pytest.approx(i * per_message, rel=0.01)
