"""Setup shim.

The environment ships setuptools 65 without the ``wheel`` package, so the
PEP 660 editable-install path (which requires ``bdist_wheel``) fails.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
fall back to the legacy ``setup.py develop`` flow.  Metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
