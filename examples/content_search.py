"""Content-based search and access-controlled sharing.

The paper's motivation: file-level sharing (Napster/Gnutella) "ignore[s]
the content of the file".  With mobile agents, a custom search runs *at
the data*: this example ships a content-grep agent that inspects object
payloads (not just keyword tags) and returns only matching snippets.

It then demonstrates *active objects* (Section 3.2.2): a report whose
guard code releases the full text to auditors but strips salary figures
for everyone else.

Run:  python examples/content_search.py
"""

from repro import Agent, BestPeerConfig, build_network, tree
from repro.errors import AccessDeniedError


class ContentGrepAgent(Agent):
    """Search object *payloads* for a substring - content, not metadata.

    State stays plain (strings only) so the class ships to any peer.
    """

    def __init__(self, needle: str):
        self.needle = needle

    def execute(self, context):
        from repro.agents.messages import AnswerItem

        result = context.storm.search_scan("")  # examine everything
        context.charge_search(result)
        items = []
        needle = self.needle.encode("utf-8")
        for rid, obj in context.storm.scan():
            position = obj.payload.find(needle)
            if position < 0:
                continue
            snippet = obj.payload[max(0, position - 10): position + 30]
            items.append(
                AnswerItem(rid=rid, keywords=obj.keywords,
                           size=obj.size, payload=snippet)
            )
        if items:
            context.reply(items)


def main() -> None:
    net = build_network(7, config=BestPeerConfig(), topology=tree(7, branching=2))

    # Documents tagged only as "notes" - keyword search can't tell them apart.
    net.nodes[3].share(["notes"], b"meeting notes: the quarterly deadline moved")
    net.nodes[4].share(["notes"], b"draft: deadline for the ICDE submission is firm")
    net.nodes[5].share(["notes"], b"lunch menu: laksa, chicken rice, kaya toast")

    print("Content search for 'deadline' across the network:")
    # A custom agent is dispatched outside the query machinery, so
    # collect its answers with a plain listener on the answer protocol.
    from repro.agents.engine import PROTO_ANSWER

    collected = []
    net.base.host.unbind(PROTO_ANSWER)
    net.base.host.bind(PROTO_ANSWER, lambda pkt: collected.append(pkt.payload))
    net.base.dispatch_agent(ContentGrepAgent("deadline"))
    net.sim.run()
    for answer in collected:
        for item in answer.items:
            print(f"  {answer.responder}: ...{item.payload.decode()!r}...")

    # ------------------------------------------------------------------
    # Active objects: owner-defined code guards partial content.
    # ------------------------------------------------------------------
    owner = net.nodes[1]
    report = (b"Q3 report | headcount: 42 | revenue: up"
              b" | SALARIES: [redacted-worthy numbers]")

    def guard(requester, credential, data):
        if credential == "auditor-token":
            return data
        if credential == "employee":
            return data.split(b"| SALARIES:")[0].strip()
        raise AccessDeniedError(f"credential {credential!r} is not accepted")

    owner.share_active("q3-report", report, guard)

    print("\nActive object 'q3-report' under three credentials:")
    for credential in ("employee", "auditor-token", "stranger"):
        replies = []
        net.base.request_active(
            owner.host.address, "q3-report", credential, replies.append
        )
        net.sim.run()
        reply = replies[0]
        if reply.granted:
            print(f"  {credential!r:16} -> {reply.content.decode()}")
        else:
            print(f"  {credential!r:16} -> DENIED ({reply.reason})")


if __name__ == "__main__":
    main()
