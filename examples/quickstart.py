"""Quickstart: build a BestPeer network, search it, watch it reconfigure.

Builds an 8-node line overlay (the worst case for a static network),
places music metadata at the two far ends, issues the same query twice,
and shows how MaxCount reconfiguration pulls the answer-bearing nodes
into the base's direct-peer set — cutting the completion time.

Run:  python examples/quickstart.py
"""

from repro import BestPeerConfig, build_network, line


def main() -> None:
    config = BestPeerConfig(max_direct_peers=4, strategy="maxcount")
    net = build_network(8, config=config, topology=line(8))
    base = net.base

    # Publish sharable objects.  The far nodes hold what we want.
    net.nodes[6].share(["jazz", "coltrane"], b"Giant Steps (1960)")
    net.nodes[6].share(["jazz", "coltrane"], b"A Love Supreme (1965)")
    net.nodes[7].share(["jazz", "davis"], b"Kind of Blue (1959)")
    for i in range(1, 6):
        net.nodes[i].share(["rock"], f"filler-{i}".encode())

    print("Direct peers of the base before the first query:")
    for peer in base.peers.entries():
        print(f"  {peer.bpid} @ {peer.address}")

    # --- first query: the agent floods the whole line -----------------
    handle = base.issue_query("jazz")
    net.sim.run()
    print(f"\nQuery 1: {handle.network_answer_count} answers "
          f"from {len(handle.responders)} nodes "
          f"in {handle.completion_time:.4f}s (simulated)")
    for answer in handle.answers:
        titles = ", ".join(item.payload.decode() for item in answer.items)
        print(f"  {answer.responder} (hops={answer.hops}): {titles}")

    # Closing the query triggers MaxCount reconfiguration.
    base.finish_query(handle)
    print("\nDirect peers of the base after reconfiguration:")
    for peer in base.peers.entries():
        print(f"  {peer.bpid}  (answers={peer.last_answers}, "
              f"hops={peer.last_hops})")

    # --- second query: the answer-bearers are now one hop away ---------
    second = base.issue_query("jazz")
    net.sim.run()
    print(f"\nQuery 2: {second.network_answer_count} answers "
          f"in {second.completion_time:.4f}s (simulated)")
    speedup = handle.completion_time / second.completion_time
    print(f"Reconfiguration speedup: {speedup:.2f}x")
    base.finish_query(second)


if __name__ == "__main__":
    main()
