"""Plugging in your own reconfiguration strategy.

The paper: "nodes can redefine the number of direct peers it would like
to have and implement their own reconfiguration strategies".  This
example writes one — a *loyalty-weighted* MaxCount that blends the
latest query's answers with a peer's lifetime contribution, so a single
quiet query does not evict a historically excellent peer — and runs it
head-to-head against plain MaxCount on a workload designed to punish
short memories (the answer-bearing node alternates between two hosts).

Run:  python examples/custom_strategy.py
"""

from repro import BestPeerConfig, build_network, line
from repro.core.reconfig import PeerObservation, ReconfigurationStrategy


class LoyaltyStrategy(ReconfigurationStrategy):
    """Rank by (this query's answers) + loyalty x (answers ever seen)."""

    name = "loyalty"

    def __init__(self, loyalty: float = 0.5):
        self.loyalty = loyalty
        self._lifetime: dict = {}

    def select(self, candidates, k):
        for obs in candidates:
            if obs.answers:
                self._lifetime[obs.bpid] = (
                    self._lifetime.get(obs.bpid, 0) + obs.answers
                )

        def score(obs: PeerObservation) -> float:
            return obs.answers + self.loyalty * self._lifetime.get(obs.bpid, 0)

        ranked = sorted(
            candidates, key=lambda obs: (-score(obs), not obs.is_current, str(obs.bpid))
        )
        return ranked[:k]


def run(strategy_name, strategy=None, rounds=6):
    """Alternating workload: odd queries match node 5, even match node 6."""
    config = BestPeerConfig(max_direct_peers=2, strategy="static")
    net = build_network(8, config=config, topology=line(8))
    if strategy is not None:
        net.base.strategy = strategy
    else:
        from repro.core.reconfig import make_reconfig_strategy

        net.base.strategy = make_reconfig_strategy(strategy_name)
    net.nodes[5].share(["odd"], b"x" * 64)
    net.nodes[6].share(["even"], b"y" * 64)
    total = 0.0
    for round_number in range(rounds):
        keyword = "odd" if round_number % 2 else "even"
        handle = net.base.issue_query(keyword)
        net.sim.run()
        total += handle.completion_time or 0.0
        net.base.finish_query(handle)
    return total / rounds


def main() -> None:
    plain = run("maxcount")
    loyal = run("loyalty", strategy=LoyaltyStrategy(loyalty=0.5))
    print("Alternating-keyword workload, average completion per query:")
    print(f"  MaxCount (memoryless): {plain:.4f}s")
    print(f"  LoyaltyStrategy:       {loyal:.4f}s")
    if loyal < plain:
        print(f"  -> loyalty wins by {plain / loyal:.2f}x: it keeps *both* "
              f"providers close instead of evicting the quiet one each round")
    else:
        print("  -> on this run plain MaxCount held its own")


if __name__ == "__main__":
    main()
