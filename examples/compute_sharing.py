"""Computational power sharing: ship the algorithm to the data.

Section 3.2.3: "The requester sends his/her request for a file together
with an algorithm (executable code) that operates on the file.  In other
words, the requester performs the filtering task at the provider's end!"

Here each peer holds a year of daily "stock tick" records (as raw CSV
bytes).  Instead of downloading megabytes of ticks, the requester ships
a small aggregation agent that computes per-symbol statistics at every
provider and returns a few numbers.  A second, itinerary-mode agent then
tours the same peers sequentially (the *traditional* mobile-agent style
the paper contrasts with its flooding) and accumulates a global summary
in its own state.

Run:  python examples/compute_sharing.py
"""

import random

from repro import Agent, BestPeerConfig, build_network, star
from repro.agents.envelope import MODE_ITINERARY


class TickStatsAgent(Agent):
    """Compute min/max/mean close price for one symbol, at the data."""

    def __init__(self, symbol: str):
        self.symbol = symbol

    def execute(self, context):
        from repro.agents.messages import AnswerItem

        result = context.storm.search_scan(self.symbol)
        context.charge_search(result)
        closes = []
        for _rid, obj in result.matches:
            for tick_line in obj.payload.splitlines():
                _day, close = tick_line.split(b",")
                closes.append(float(close))
        if not closes:
            return
        summary = (
            f"{self.symbol} n={len(closes)} min={min(closes):.2f} "
            f"max={max(closes):.2f} mean={sum(closes) / len(closes):.2f}"
        )
        (rid, obj) = result.matches[0]
        context.reply(
            [AnswerItem(rid=rid, keywords=obj.keywords, size=len(summary),
                        payload=summary.encode())]
        )


class PortfolioTourAgent(Agent):
    """Traditional itinerary agent: visit peers in order, accumulate."""

    def __init__(self, symbol: str):
        self.symbol = symbol
        self.total_ticks = 0
        self.sites_visited = 0

    def execute(self, context):
        result = context.storm.search_scan(self.symbol)
        context.charge_search(result)
        for _rid, obj in result.matches:
            self.total_ticks += len(obj.payload.splitlines())
        self.sites_visited += 1


def make_ticks(rng: random.Random, days: int = 250) -> bytes:
    price = 100.0
    lines = []
    for day in range(days):
        price = max(1.0, price * (1.0 + rng.uniform(-0.03, 0.03)))
        lines.append(f"{day},{price:.2f}".encode())
    return b"\n".join(lines)


def main() -> None:
    net = build_network(5, config=BestPeerConfig(), topology=star(5))
    rng = random.Random(7)
    for index, node in enumerate(net.nodes[1:], start=1):
        for symbol in ("ACME", "GLOBEX"):
            node.share([symbol, "ticks"], make_ticks(rng))
    tick_bytes = sum(
        obj.size for node in net.nodes[1:] for _rid, obj in node.storm.scan()
    )

    # ------------------------------------------------------------------
    # Flood a stats agent: every provider aggregates locally in parallel.
    # ------------------------------------------------------------------
    from repro.agents.engine import PROTO_ANSWER

    answers = []
    net.base.host.unbind(PROTO_ANSWER)
    net.base.host.bind(PROTO_ANSWER, lambda pkt: answers.append(pkt.payload))
    net.base.dispatch_agent(TickStatsAgent("ACME"))
    net.sim.run()

    print("Per-provider ACME statistics (computed at the providers):")
    moved = 0
    for answer in answers:
        for item in answer.items:
            print(f"  {answer.responder}: {item.payload.decode()}")
            moved += len(item.payload)
    print(f"\nRaw tick data at providers: {tick_bytes:,} bytes")
    print(f"Bytes returned to requester: {moved:,} bytes "
          f"({moved / tick_bytes:.2%} of the data)")

    # ------------------------------------------------------------------
    # Itinerary tour: one agent, sequential visits, state accumulates.
    # ------------------------------------------------------------------
    tours = []
    net.base.engine.on_agent_home = lambda agent_id, state: tours.append(state)
    path = [node.host.address for node in net.nodes[1:]]
    net.base.dispatch_agent(
        PortfolioTourAgent("GLOBEX"), mode=MODE_ITINERARY, path=path
    )
    net.sim.run()
    (state,) = tours
    print(f"\nItinerary agent visited {state['sites_visited']} sites and "
          f"counted {state['total_ticks']} GLOBEX ticks in total.")


if __name__ == "__main__":
    main()
