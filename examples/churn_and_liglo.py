"""Churn and LIGLO: recognizing peers whose IP addresses change.

The scenario Section 3.4 is built for: a set of collaborators on
dial-up-style connections.  Every time a node reconnects it receives a
*different* IP address, yet its peers keep finding it because its BPID
is permanent and its LIGLO server tracks the current address.

The example walks through: registration (BPID issuance), a disconnect/
reconnect cycle with a changed IP, the Section-2 rejoin protocol (peers
refreshed through each peer's own LIGLO), LIGLO validity checks marking
silent nodes offline, and a query that still works after all the churn.

Run:  python examples/churn_and_liglo.py
"""

from repro import BestPeerConfig, build_network, ring


def main() -> None:
    net = build_network(
        5,
        config=BestPeerConfig(max_direct_peers=4),
        topology=ring(5),
        liglo_check_interval=30.0,  # periodic validity checks
    )
    # The friend is one of the base's direct (ring-neighbor) peers.
    base, friend = net.nodes[0], net.nodes[1]
    friend.share(["thesis"], b"chapter 3, revision 7")

    print("Identities issued by LIGLO:")
    for node in net.nodes:
        print(f"  {node.name}: BPID {node.bpid} @ {node.host.address}")

    # ------------------------------------------------------------------
    # The friend churns: disconnect, reconnect under a fresh IP.
    # ------------------------------------------------------------------
    old_address = friend.host.address
    friend.leave()
    friend.rejoin()  # reconnect + announce new IP + refresh its peers
    net.sim.run()
    print(f"\n{friend.name} reconnected: {old_address} -> {friend.host.address}")
    assert friend.host.address != old_address

    # The base rejoins too; the Section-2 protocol refreshes each peer's
    # address through that peer's registered LIGLO.
    base.leave()
    base.rejoin()
    net.sim.run()
    refreshed = base.peers.get(friend.bpid)
    print(f"{base.name} resolved {friend.bpid} to {refreshed.address} "
          f"(current: {friend.host.address})")
    assert refreshed.address == friend.host.address

    # ------------------------------------------------------------------
    # Queries keep working across the churn.
    # ------------------------------------------------------------------
    handle = base.issue_query("thesis")
    net.sim.run()
    print(f"\nQuery found {handle.network_answer_count} answer(s) from "
          f"{[str(b) for b in handle.responders]}")
    base.finish_query(handle)

    # ------------------------------------------------------------------
    # Validity checks: a silently-vanished node gets marked offline.
    # ------------------------------------------------------------------
    ghost = net.nodes[4]
    ghost_bpid = ghost.bpid
    ghost.leave()  # no notice given - nodes are not obliged to tell LIGLO
    net.sim.run(until=net.sim.now + 90.0)  # let validity checks fire
    server = net.liglo_servers[0]
    entry = server.lookup(ghost_bpid)
    print(f"\nAfter validity checks, LIGLO marks {ghost_bpid}: "
          f"online={entry.online}")
    assert not entry.online

    # The base cleans the dead peer out on its next rejoin.
    base.leave()
    base.rejoin()
    net.sim.run()
    print(f"{base.name} direct peers now: "
          f"{[str(b) for b in base.peers.bpids()]}")
    assert ghost_bpid not in base.peers


if __name__ == "__main__":
    main()
