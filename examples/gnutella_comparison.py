"""A miniature of the paper's Section 4.6: BestPeer vs Gnutella.

Builds the two systems on the same 16-node overlay with the same shared
files (answers restricted to three nodes), issues the same query four
times against each, and prints the per-run completion times — the shape
of Figure 8(a): Gnutella flat, BestPeer dropping sharply after run 1.

Run:  python examples/gnutella_comparison.py
(For the full paper-scale experiment use
 ``pytest benchmarks/bench_fig8a_gnutella_runs.py --benchmark-only -s``.)
"""

from repro.eval.figures import FigureParams, figure_8a
from repro.eval.report import format_figure


def main() -> None:
    params = FigureParams(objects_per_node=200, corpus_size=20, queries=4)
    result = figure_8a(params, node_count=16, max_peers=8, holder_count=3)
    print(format_figure(result))
    bp = result.y_values("BP")
    print(
        f"\nBestPeer run-1 vs steady-state: {bp[0]:.4f}s -> {bp[-1]:.4f}s "
        f"({bp[0] / bp[-1]:.2f}x faster after reconfiguration)"
    )


if __name__ == "__main__":
    main()
