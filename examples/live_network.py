"""BestPeer on real sockets: the same agents, no simulator.

Spins up five LivePeers on localhost TCP ports, wires them into a line,
and runs the quickstart scenario for real: keyword query floods as
actual framed/gzipped messages, the agent class ships as source and is
exec-installed at each peer, answers return directly over fresh
connections, and MaxCount reconfiguration pulls the answer-bearing far
node next to the querier.

Run:  python examples/live_network.py
"""

import time

from repro.live import LivePeer


def main() -> None:
    peers = [LivePeer(f"peer-{i}") for i in range(5)]
    try:
        for left, right in zip(peers, peers[1:]):
            left.connect_to(right)
        base, far = peers[0], peers[4]
        far.share(["jazz", "mingus"], b"The Black Saint and the Sinner Lady")
        far.share(["jazz", "mingus"], b"Mingus Ah Um")
        peers[2].share(["rock"], b"not what we want")

        print("Live peers listening on:")
        for peer in peers:
            print(f"  {peer.name}: {peer.address[0]}:{peer.address[1]}")

        started = time.perf_counter()
        query = base.issue_query("jazz")
        if not query.wait_for_answers(1, timeout=5.0):
            raise SystemExit("no answers arrived - is localhost networking up?")
        first_elapsed = time.perf_counter() - started
        print(f"\nQuery 1 over real TCP: {query.answer_count} answers "
              f"in {first_elapsed * 1000:.1f}ms (wall clock)")
        for answer in query.answers:
            titles = ", ".join(item.payload.decode() for item in answer.items)
            print(f"  {answer.responder} at {answer.hops} hops: {titles}")
        print(f"Agent class installed at {far.name}: "
              f"{far.engine.registry.installs} install(s)")

        base.reconfigure(query)
        print(f"\nAfter MaxCount reconfiguration, {base.name}'s peers: "
              f"{[str(b) for b in base.peer_bpids()]}")

        started = time.perf_counter()
        second = base.issue_query("jazz")
        second.wait_for_answers(1, timeout=5.0)
        second_elapsed = time.perf_counter() - started
        hops = {str(a.responder): a.hops for a in second.answers}
        print(f"Query 2: {second.answer_count} answers "
              f"in {second_elapsed * 1000:.1f}ms; hops now {hops}")
    finally:
        for peer in peers:
            peer.close()


if __name__ == "__main__":
    main()
