"""Discovery + the code-vs-data shipping optimizer (paper future work).

Section 6 of the paper: "We plan to make a node more intelligent by
allowing it to determine at runtime which strategy to adopt -
code-shipping or data-shipping."

This example puts the pieces together:

1. a :class:`DiscoveryAgent` sweeps the network *offline* and reports
   every peer's content statistics (keyword histograms, store sizes);
2. the adaptive shipping policy uses the discovered store sizes: small
   stores are mirrored locally (data-shipping, amortized over future
   queries), large stores are visited by agents (code-shipping);
3. repeated queries get cheaper as the mirrors warm up.

Run:  python examples/smart_shipping.py
"""

from repro import BestPeerConfig, build_network, star
from repro.core import KnowledgeStrategy
from repro.util.tracing import Tracer


def main() -> None:
    config = BestPeerConfig(shipping_policy="adaptive", max_direct_peers=4)
    net = build_network(4, config=config, topology=star(4), tracer=Tracer())
    base = net.base

    # One peer hosts a tiny bookmark list; another a large media store.
    tiny = net.nodes[1]
    for i in range(5):
        tiny.share(["bookmarks"], f"https://example.org/{i}".encode())
    big = net.nodes[2]
    for i in range(400):
        big.share(["bookmarks" if i % 100 == 0 else "media"], bytes([i % 256]) * 1024)
    net.nodes[3].share(["bookmarks"], b"https://conference.example/icde2002")

    # --- offline discovery maps who shares what -----------------------
    base.discover()
    net.sim.run()
    print("Discovered content map:")
    for bpid, report in sorted(base.knowledge.reports.items(), key=lambda kv: str(kv[0])):
        top = ", ".join(f"{k}x{c}" for k, c in report.keyword_counts[:2])
        print(f"  {bpid}: {report.object_count} objects, "
              f"{report.total_bytes:,} bytes ({top})")

    # --- the shipping decision uses the discovered sizes ---------------
    print("\nSmart query 1 (decisions below are traced per peer):")
    handle = base.smart_query("bookmarks")
    net.sim.run()
    for event in net.tracer.select("node", "shipping-choice"):
        print(f"  {event.get('peer')}: {event.get('choice')}")
    print(f"  -> {handle.network_answer_count} answers "
          f"in {(handle.last_arrival or 0) - handle.issued_at:.4f}s")

    mirrored = [n.name for n in net.nodes[1:] if base.has_cached_data(n.bpid)]
    print(f"\nLocally mirrored peers: {mirrored}")

    print("\nSmart query 2 (mirrors answer from the local cache):")
    start = net.sim.now
    second = base.smart_query("bookmarks")
    net.sim.run()
    print(f"  -> {second.network_answer_count} answers "
          f"in {(second.last_arrival or start) - start:.4f}s")

    # --- knowledge also guides reconfiguration -------------------------
    base.strategy = KnowledgeStrategy(base.knowledge, profile=["bookmarks"])
    base.finish_query(second)
    best = base.knowledge.best_providers(["bookmarks"], k=1)[0]
    print(f"\nBest 'bookmarks' provider per the knowledge base: {best}")


if __name__ == "__main__":
    main()
