"""Event-kernel microbenchmarks: schedule/fire/cancel, serial vs sharded.

Classic multi-round pytest-benchmark measurements of the kernel hot
paths the sharded executor leans on:

* a schedule/fire/cancel mix on the serial kernel — every fired event
  schedules two successors and cancels one of them, so half the heap is
  dead weight and the compaction sweep must keep ``pending_events``
  exact while the heap stays bounded;
* the same mix run through the lockstep sharded executor (one chain per
  shard, fixed lookahead), measuring the facade's bookkeeping overhead;
* barrier post/flush throughput: cross-shard messages injected through
  the shared-sequence path.

Full-scale runs persist a ``kernel`` section into
``BENCH_scaling.json`` (same artifact as the scaling figure) with
events/second and the sharded-over-serial overhead factor.
``REPRO_BENCH_SCALE=smoke`` shrinks the workloads and skips the
persist.
"""

import os
import time

from benchmarks.support import merge_section
from repro.sim import ShardedSimulator, Simulator

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "smoke"

#: events fired per measured run
EVENTS = 2_000 if SMOKE else 20_000

_results: dict[str, float] = {}


def _mix_serial() -> int:
    """Fire EVENTS events; each schedules two successors, cancels one."""
    sim = Simulator()
    fired = [0]

    def tick():
        fired[0] += 1
        if fired[0] >= EVENTS:
            return
        sim.schedule(0.001, tick)
        sim.schedule(0.002, tick).cancel()

    sim.schedule(0.001, tick)
    sim.run()
    return fired[0]


def _mix_sharded(shard_count: int) -> int:
    """The same mix, one independent chain per shard, lockstep executor."""
    sharded = ShardedSimulator(shard_count, lookahead=10.0)
    per_shard = EVENTS // shard_count
    fired = [0] * shard_count

    def make_tick(shard: int):
        sim = sharded.shards[shard]

        def tick():
            fired[shard] += 1
            if fired[shard] >= per_shard:
                return
            sim.schedule(0.001, tick)
            sim.schedule(0.002, tick).cancel()

        return tick

    for shard in range(shard_count):
        sharded.shards[shard].schedule(0.001, make_tick(shard))
    sharded.run()
    return sum(fired)


def _barrier_throughput(shard_count: int, messages: int) -> int:
    """Post cross-shard messages and run them to completion."""
    sharded = ShardedSimulator(shard_count, lookahead=0.5)
    delivered = [0]

    def receive():
        delivered[0] += 1

    for index in range(messages):
        sharded.post(
            index % shard_count,
            (index + 1) % shard_count,
            1.0 + index * 0.001,
            receive,
        )
    sharded.run()
    return delivered[0]


def test_kernel_mix_serial(benchmark):
    fired = benchmark(_mix_serial)
    assert fired == EVENTS
    _results["serial_events_per_second"] = EVENTS / benchmark.stats["mean"]


def test_kernel_mix_sharded_2(benchmark):
    fired = benchmark(lambda: _mix_sharded(2))
    assert fired == (EVENTS // 2) * 2
    _results["lockstep2_events_per_second"] = EVENTS / benchmark.stats["mean"]


def test_kernel_mix_sharded_4(benchmark):
    fired = benchmark(lambda: _mix_sharded(4))
    assert fired == (EVENTS // 4) * 4
    _results["lockstep4_events_per_second"] = EVENTS / benchmark.stats["mean"]


def test_barrier_post_throughput(benchmark):
    messages = EVENTS // 2
    delivered = benchmark(lambda: _barrier_throughput(2, messages))
    assert delivered == messages
    _results["barrier_messages_per_second"] = messages / benchmark.stats["mean"]


def test_compaction_keeps_heap_bounded():
    """Cancel-heavy load: the swept heap stays near the live count."""
    sim = Simulator()
    live = []
    for index in range(10_000):
        timer = sim.schedule(1.0 + index, lambda: None)
        if index % 10 == 0:
            live.append(timer)
        else:
            timer.cancel()
    assert sim.pending_events == len(live)
    assert len(sim._heap) <= 2 * len(live) + sim.COMPACTION_MIN_HEAP


def test_zz_persist_kernel_section():
    """Runs last (name-ordered): persist what the mixes measured."""
    if SMOKE or len(_results) < 4:
        return
    overhead2 = _results["serial_events_per_second"] / _results[
        "lockstep2_events_per_second"
    ]
    overhead4 = _results["serial_events_per_second"] / _results[
        "lockstep4_events_per_second"
    ]
    merge_section(
        "scaling",
        "kernel",
        {
            "events": EVENTS,
            "serial_events_per_second": round(
                _results["serial_events_per_second"]
            ),
            "lockstep2_events_per_second": round(
                _results["lockstep2_events_per_second"]
            ),
            "lockstep4_events_per_second": round(
                _results["lockstep4_events_per_second"]
            ),
            "lockstep2_overhead": round(overhead2, 3),
            "lockstep4_overhead": round(overhead4, 3),
            "barrier_messages_per_second": round(
                _results["barrier_messages_per_second"]
            ),
            "measured_at": time.strftime("%Y-%m-%d"),
        },
    )
