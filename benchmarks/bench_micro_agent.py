"""Microbenchmark: the agent execute-path caches on a flood workload.

A 32-node flood repeatedly dispatches one agent class: every dispatch
used to pay :func:`inspect.getsource` at the initiator, and every
first-contact hop used to ``compile``+``exec`` the shipped source at the
receiver.  With the process-wide source/compile caches
(:mod:`repro.agents.codeship`) both costs are paid once per process.

Two measurements, both over the identical flood pattern:

* **agent path** — the codeship work of the flood in isolation
  (per-dispatch source extraction at the initiator, per-node install at
  each receiver, across fresh per-lifetime registries, the way fresh
  engines meet a class).  This is where the caches live, and the
  measured speedup is asserted ≥ 2x.
* **full simulation** — the same flood driven end-to-end through
  engines, wire encoding, and the event kernel, so the JSON records how
  much of the total wall-clock the agent path was.

Both runs must agree on every simulated quantity — per-registry
``installs``, answer counts, completion times — and the result is
written to ``BENCH_agent.json`` with per-op profiler evidence
(:func:`repro.eval.report.agent_path_stats`).

``REPRO_BENCH_SCALE=smoke`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.support import RESULTS_DIR
from repro.agents import codeship
from repro.agents.codeship import AgentCodeRegistry
from repro.agents.engine import PROTO_ANSWER, AgentEngine
from repro.agents.agent import Agent
from repro.agents.costs import AgentCosts
from repro.agents.profile import PROFILE_CATEGORY, PROFILE_OPS
from repro.ids import BPID
from repro.net import Network
from repro.sim import Simulator
from repro.storm import StorM
from repro.util.tracing import Tracer

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "") == "smoke"

#: the flood's fan-out: one initiator shipping to this many receivers
NODES = 32
#: repeated dispatches of the same class per network lifetime
DISPATCHES = 2 if SMOKE else 8
#: fresh-registry generations (new engines meeting the class first-hand)
LIFETIMES = 2 if SMOKE else 10

FAST_COSTS = AgentCosts(
    class_install_time=0.01,
    state_install_time=0.001,
    execute_overhead=0.0,
    page_io_time=0.0,
    object_match_time=0.0,
)


class FloodBenchAgent(Agent):
    """The one repeatedly-dispatched class; sized like a real search
    agent so source extraction and compilation cost realistic time."""

    def __init__(self, keyword, limit=16):
        self.keyword = keyword
        self.limit = limit
        self.visited = []

    def _matches(self, store):
        found = []
        for rid, obj in store.scan():
            if self.keyword in obj.keywords:
                found.append((rid, obj))
            if len(found) >= self.limit:
                break
        return found

    def execute(self, context):
        from repro.agents.messages import AnswerItem

        result = context.storm.search_scan(self.keyword)
        context.charge_search(result)
        items = [
            AnswerItem(rid=rid, keywords=obj.keywords, size=obj.size)
            for rid, obj in result.matches
        ]
        if items:
            context.reply(items)


def _agent_path_flood() -> tuple[float, list[int]]:
    """The codeship work of the flood, isolated from the simulator.

    Per lifetime: one fresh initiator registry extracts the class source
    once per dispatch (``register_local``, exactly what ``dispatch``
    does) and ``NODES`` fresh receiver registries install the shipped
    source on first contact.  Returns elapsed seconds plus every
    ``installs`` counter, which the caches must not change.
    """
    installs = []
    start = time.perf_counter()
    for _ in range(LIFETIMES):
        initiator = AgentCodeRegistry()
        for _ in range(DISPATCHES):
            initiator.register_local(FloodBenchAgent)
        source = initiator.source_of("FloodBenchAgent")
        for _ in range(NODES):
            receiver = AgentCodeRegistry()
            for _ in range(DISPATCHES):
                receiver.install("FloodBenchAgent", source)
            installs.append(receiver.installs)
    return time.perf_counter() - start, installs


def _full_sim_flood() -> tuple[float, dict, Tracer]:
    """The same flood end-to-end: engines, wire, event kernel."""
    tracer = Tracer(categories=frozenset({PROFILE_CATEGORY}))
    observed: dict[str, object] = {"answers": 0, "installs": 0, "finish": []}
    start = time.perf_counter()
    for _ in range(LIFETIMES):
        sim = Simulator()
        network = Network(sim, tracer=tracer)
        hub_host = network.create_host("hub", dispatch_time=0.0)
        answers = []
        hub_host.bind(PROTO_ANSWER, lambda packet: answers.append(packet.payload))
        peers: list = []
        hub = AgentEngine(
            hub_host,
            local_bpid=BPID("bench", 0),
            costs=FAST_COSTS,
            get_peers=lambda: [h.address for h in peers],
            tracer=tracer,
        )
        engines = []
        for index in range(NODES - 1):
            host = network.create_host(f"n{index}", dispatch_time=0.0)
            storm = StorM()
            storm.put(["k"], bytes([index % 256]) * 16)
            engines.append(
                AgentEngine(
                    host,
                    local_bpid=BPID("bench", index + 1),
                    services={"storm": storm},
                    costs=FAST_COSTS,
                    get_peers=lambda: [],
                    tracer=tracer,
                )
            )
            peers.append(host)
        for _ in range(DISPATCHES):
            hub.dispatch(FloodBenchAgent("k"))
            sim.run()
        observed["answers"] += len(answers)
        observed["installs"] += sum(e.registry.installs for e in engines)
        observed["finish"].append(round(sim.now, 9))
    return time.perf_counter() - start, observed, tracer


def _profiler_evidence(tracer: Tracer) -> dict[str, object]:
    evidence: dict[str, object] = {}
    for op in PROFILE_OPS:
        evidence[f"{op}_count"] = tracer.counter(PROFILE_CATEGORY, op)
        evidence[f"{op}_seconds"] = round(tracer.timer(PROFILE_CATEGORY, op), 4)
    evidence.update(codeship.cache_stats())
    return evidence


def _with_caches(enabled: bool, fn):
    previous = os.environ.pop(codeship.NO_CACHE_ENV_VAR, None)
    if not enabled:
        os.environ[codeship.NO_CACHE_ENV_VAR] = "1"
    codeship.clear_caches()
    try:
        return fn()
    finally:
        if previous is None:
            os.environ.pop(codeship.NO_CACHE_ENV_VAR, None)
        else:
            os.environ[codeship.NO_CACHE_ENV_VAR] = previous


def test_agent_path_flood_caches():
    cached_seconds, cached_installs = _with_caches(True, _agent_path_flood)
    uncached_seconds, uncached_installs = _with_caches(False, _agent_path_flood)

    # The caches may only change speed, never the install accounting.
    assert cached_installs == uncached_installs
    assert all(count == 1 for count in cached_installs)

    cached_sim, cached_observed, cached_tracer = _with_caches(
        True, _full_sim_flood
    )
    cached_evidence = _profiler_evidence(cached_tracer)
    uncached_sim, uncached_observed, uncached_tracer = _with_caches(
        False, _full_sim_flood
    )
    uncached_evidence = _profiler_evidence(uncached_tracer)

    # Simulated quantities are bit-identical cache-on vs cache-off.
    assert cached_observed == uncached_observed

    path_speedup = uncached_seconds / cached_seconds
    sim_speedup = uncached_sim / cached_sim
    payload = {
        "name": "agent",
        "nodes": NODES,
        "dispatches": DISPATCHES,
        "lifetimes": LIFETIMES,
        "agent_path_cached_seconds": round(cached_seconds, 4),
        "agent_path_uncached_seconds": round(uncached_seconds, 4),
        "agent_path_speedup": round(path_speedup, 2),
        "full_sim_cached_seconds": round(cached_sim, 4),
        "full_sim_uncached_seconds": round(uncached_sim, 4),
        "full_sim_speedup": round(sim_speedup, 2),
        "simulated_quantities_identical": cached_observed == uncached_observed,
        "profile_cached": cached_evidence,
        "profile_uncached": uncached_evidence,
    }
    if not SMOKE:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, "BENCH_agent.json"), "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(
        f"\nagent path: cached {cached_seconds:.4f}s vs uncached "
        f"{uncached_seconds:.4f}s ({path_speedup:.1f}x); full sim: "
        f"{cached_sim:.4f}s vs {uncached_sim:.4f}s ({sim_speedup:.2f}x)"
    )
    # Repeated dispatch + per-node install must be far beyond 2x cached.
    assert path_speedup > 2.0
