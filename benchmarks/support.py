"""Shared benchmark scaffolding.

Every bench runs its figure at the paper's scale (1000 x 1KB objects per
node, queries issued four times), prints the reproduced series, and
saves them under ``benchmarks/results/`` so EXPERIMENTS.md can be
regenerated from a benchmark run.  Benches that pass an ``elapsed``
wall-clock additionally write ``BENCH_<name>.json`` next to the text
output, recording the measured time against the pre-optimisation
baseline so speedups are auditable from the artifact alone.
"""

from __future__ import annotations

import functools
import json
import os
import time

from repro.eval.experiment import FigureResult
from repro.eval.figures import FigureParams, figures_6_and_7
from repro.eval.report import format_figure

#: Paper-scale parameters shared by all figure benchmarks.
PAPER = FigureParams(objects_per_node=1000, object_size=1024, queries=4)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Wall-clock seconds per figure before the wire/StorM fast paths landed
#: (commit cbbcbfd, paper scale, single-CPU container).  Recorded into
#: every ``BENCH_*.json`` so the speedup claim carries its own evidence.
BASELINES_SECONDS = {
    "figure_5a": 36.26,
    "figure_8a": 10.20,
}


def timed(fn):
    """Run ``fn()`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def publish(
    name: str,
    result: FigureResult,
    elapsed: float | None = None,
    extra: dict | None = None,
) -> FigureResult:
    """Print a reproduced figure and persist it for EXPERIMENTS.md.

    With ``elapsed``, also write ``BENCH_<name>.json`` holding the series
    plus wall-clock evidence (and the recorded baseline, when one exists).
    """
    text = format_figure(result)
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    if elapsed is not None:
        payload = {
            "name": name,
            "figure": result.figure,
            "series": {k: list(map(list, v)) for k, v in result.series.items()},
            "wall_clock_seconds": round(elapsed, 4),
        }
        baseline = BASELINES_SECONDS.get(name)
        if baseline is not None:
            payload["baseline_seconds"] = baseline
            payload["speedup_vs_baseline"] = round(baseline / elapsed, 2)
        if extra:
            payload.update(extra)
        json_path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


@functools.lru_cache(maxsize=1)
def shared_figures_6_and_7() -> tuple[FigureResult, FigureResult]:
    """Figures 6 and 7 share one set of runs; compute them once."""
    return figures_6_and_7(PAPER, node_count=32)


def merge_section(name: str, section: str, payload: dict) -> None:
    """Read-modify-write one section of ``BENCH_<name>.json``.

    Lets several benches feed one artifact (the scaling figure and the
    kernel microbench both land in ``BENCH_scaling.json``) without
    clobbering each other's sections.
    """
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    document = {"name": name}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict) and existing.get("name") == name:
                document = existing
        except (OSError, json.JSONDecodeError):
            pass
    document[section] = payload
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
