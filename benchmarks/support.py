"""Shared benchmark scaffolding.

Every bench runs its figure at the paper's scale (1000 x 1KB objects per
node, queries issued four times), prints the reproduced series, and
saves them under ``benchmarks/results/`` so EXPERIMENTS.md can be
regenerated from a benchmark run.
"""

from __future__ import annotations

import functools
import os

from repro.eval.experiment import FigureResult
from repro.eval.figures import FigureParams, figures_6_and_7
from repro.eval.report import format_figure

#: Paper-scale parameters shared by all figure benchmarks.
PAPER = FigureParams(objects_per_node=1000, object_size=1024, queries=4)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def publish(name: str, result: FigureResult) -> FigureResult:
    """Print a reproduced figure and persist it for EXPERIMENTS.md."""
    text = format_figure(result)
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return result


@functools.lru_cache(maxsize=1)
def shared_figures_6_and_7() -> tuple[FigureResult, FigureResult]:
    """Figures 6 and 7 share one set of runs; compute them once."""
    return figures_6_and_7(PAPER, node_count=32)
