"""Figure 8(b): BestPeer vs Gnutella — effect of the number of peers.

Paper shape: both improve as nodes keep more direct peers (shorter
floods), but BP remains superior at every peer count.
"""

from benchmarks.support import PAPER, publish
from repro.eval.figures import figure_8b


def test_figure_8b_gnutella_peers(benchmark):
    result = benchmark.pedantic(
        lambda: figure_8b(PAPER, node_count=32, peer_counts=(2, 4, 6, 8)),
        rounds=1,
        iterations=1,
    )
    publish("figure_8b", result)
    bp = result.y_values("BP")
    gnutella = result.y_values("Gnutella")
    # More peers help both schemes.
    assert bp[-1] < bp[0]
    assert gnutella[-1] < gnutella[0]
    # BP remains superior throughout the sweep.
    for left, right in zip(bp, gnutella):
        assert left < right
