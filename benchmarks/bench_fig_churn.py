"""Churn figure: BPR vs BPS recall under seeded node churn 0-50%.

The robustness experiment the paper argues for but never runs: a base
node keeps querying while a deterministic fault plan crashes/restarts a
fraction of the network (plus a LIGLO outage and a transient partition
at nonzero rates).  Shape assertions:

* with no churn, recall is exactly 1.0 for both schemes — robustness
  machinery must cost a healthy network nothing;
* recall declines as churn rises;
* reconfiguring BPR never falls below static BPS at the highest rate;
* the BPR+RF2 overlay (rf=2 replication on top of reconfiguration)
  never falls below plain BPR at any swept rate.

``REPRO_BENCH_SCALE=smoke`` shrinks the sweep for CI and neither
asserts the comparison nor rewrites ``BENCH_churn.json``.
"""

import os

from benchmarks.support import publish, timed
from repro.eval.churn import figure_churn
from repro.eval.figures import FigureParams

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "smoke"

PARAMS = FigureParams(objects_per_node=0, queries=2 if SMOKE else 4, seed=0)
NODE_COUNT = 10 if SMOKE else 16
RATES = (0.0, 0.25, 0.5) if SMOKE else (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def test_figure_churn(benchmark):
    result, elapsed = benchmark.pedantic(
        lambda: timed(
            lambda: figure_churn(
                PARAMS,
                node_count=NODE_COUNT,
                churn_rates=RATES,
                replication_overlay=True,
            )
        ),
        rounds=1,
        iterations=1,
    )
    trials = figure_churn.last_trials
    publish(
        "churn",
        result,
        # In smoke mode, print/refresh the text rendering only: the
        # published BENCH_churn.json always reflects the full sweep.
        elapsed=None if SMOKE else elapsed,
        extra={
            "node_count": NODE_COUNT,
            "churn_rates": list(RATES),
            "trials": trials,
        },
    )
    if SMOKE:
        return
    bpr = dict(result.series_named("BPR"))
    bps = dict(result.series_named("BPS"))
    rf2 = dict(result.series_named("BPR+RF2"))
    # A healthy network answers in full — for both schemes.
    assert bpr[0.0] == 1.0
    assert bps[0.0] == 1.0
    # Churn hurts: the highest rate recalls strictly less than zero churn.
    top = max(RATES)
    assert bpr[top] < 1.0
    assert bps[top] < 1.0
    # Reconfiguration never does worse than static peers under churn.
    assert bpr[top] >= bps[top]
    # Replication on top of reconfiguration never does worse than
    # reconfiguration alone, at any swept rate.
    for rate in RATES:
        assert rf2[rate] >= bpr[rate]
    # The fault plan really fired: crashes and restarts were applied.
    churned = [t for t in trials if t["rate"] == top]
    for trial in churned:
        assert trial["faults_applied"].get("node-crash", 0) >= 1
        assert trial["faults_applied"].get("liglo-down", 0) == 1
        assert trial["faults_applied"].get("partition", 0) == 1
