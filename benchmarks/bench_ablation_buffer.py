"""Ablation A5: StorM buffer replacement under the agent's scan pattern.

MRU keeps a stable prefix resident across repeated sequential scans;
LRU/FIFO/Clock flood the pool and miss everything, every scan — the
result the extensible-replacement design (SIGMOD'99) exists to exploit.
"""

from benchmarks.support import publish
from repro.eval.ablations import ablation_buffer_strategy


def test_ablation_buffer_strategy(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_buffer_strategy(
            objects=1000, object_size=1024, pool_size=128, scans=4
        ),
        rounds=1,
        iterations=1,
    )
    publish("ablation_buffer", result)
    lru = result.y_values("lru")
    mru = result.y_values("mru")
    # Steady state: MRU's resident prefix beats LRU's total misses.
    assert mru[-1] < lru[-1]
