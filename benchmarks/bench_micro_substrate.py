"""Microbenchmarks of the substrate itself (real wall-clock time).

Unlike the figure benches (single-shot simulated experiments), these are
classic multi-round pytest-benchmark measurements of the library's hot
paths: StorM inserts and searches, B+-tree inserts, buffer hits, and
simulator event throughput.

The bulk-ingest and store-templating sections additionally persist
their measurements into ``BENCH_storm.json`` (the same pattern as
``bench_micro_wire.py``'s ``BENCH_wire.json``), so the setup-tax
speedup claims are auditable from the artifact alone.
``REPRO_BENCH_SCALE=smoke`` shrinks the workloads for CI smoke runs.
"""

import json
import os
import time

from benchmarks.support import RESULTS_DIR
from repro.sim import Simulator
from repro.storm import StorM
from repro.storm.btree import BPlusTree
from repro.storm.buffer import BufferManager
from repro.storm.disk import InMemoryDisk
from repro.storm.template import StoreTemplate
from repro.workloads import generate_objects

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "") == "smoke"

#: objects per node in the ingest benches (paper scale unless smoke)
INGEST_OBJECTS = 100 if SMOKE else 1000
#: population repetitions per timing (averages out allocator noise)
INGEST_ROUNDS = 2 if SMOKE else 10

BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_storm.json")


def _write_section(section: str, payload: dict) -> None:
    """Read-modify-write one section of ``BENCH_storm.json``.

    Smoke runs don't persist: their workloads are too small to support
    the recorded speedup claims, and they must not clobber the
    paper-scale artifact.
    """
    if SMOKE:
        return
    document = {"name": "storm"}
    if os.path.exists(BENCH_PATH):
        try:
            with open(BENCH_PATH) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict) and existing.get("name") == "storm":
                document = existing
        except (OSError, json.JSONDecodeError):
            pass
    document[section] = payload
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_storm_put_throughput(benchmark):
    objects = generate_objects(0, count=200, size=1024)

    def insert_batch():
        store = StorM()
        for spec in objects:
            store.put(spec.keywords, spec.payload)
        return store.count

    assert benchmark(insert_batch) == 200


def test_storm_search_scan(benchmark):
    store = StorM()
    for spec in generate_objects(0, count=1000, size=1024):
        store.put(spec.keywords, spec.payload)
    keyword = generate_objects(0, count=1, size=64)[0].keywords[0]

    result = benchmark(lambda: store.search_scan(keyword))
    assert result.objects_examined == 1000


def test_storm_indexed_search(benchmark):
    store = StorM()
    for spec in generate_objects(0, count=1000, size=1024):
        store.put(spec.keywords, spec.payload)
    keyword = generate_objects(0, count=1, size=64)[0].keywords[0]

    result = benchmark(lambda: store.search(keyword))
    assert result.match_count == 10


def test_btree_insert_throughput(benchmark):
    entries = [f"entry-{i:06d}".encode() for i in range(500)]

    def build_tree():
        tree = BPlusTree(BufferManager(InMemoryDisk(page_size=512), pool_size=64))
        for entry in entries:
            tree.insert(entry)
        return tree.entry_count

    assert benchmark(build_tree) == 500


def test_buffer_hit_path(benchmark):
    buffer = BufferManager(InMemoryDisk(page_size=4096), pool_size=8)
    page_id, _ = buffer.new_page()
    buffer.unpin(page_id)

    def hot_pin_unpin():
        for _ in range(1000):
            buffer.pin(page_id)
            buffer.unpin(page_id)

    benchmark(hot_pin_unpin)


def test_bulk_ingest_vs_per_record(benchmark):
    """``put_many`` against the per-record reference loop, same objects.

    The rids (and everything else; see tests/storm/test_bulk_load.py)
    are bit-identical — this bench pins the wall-clock side of the
    trade and records it in ``BENCH_storm.json``.
    """
    items = [
        (spec.keywords, spec.payload)
        for spec in generate_objects(0, count=INGEST_OBJECTS, size=1024)
    ]

    def populate_loop():
        store = StorM()
        return [store.put(keywords, payload) for keywords, payload in items]

    def populate_bulk():
        store = StorM()
        return store.put_many(items)

    assert populate_loop() == populate_bulk()  # identical placement

    def time_rounds(populate):
        start = time.perf_counter()
        for _ in range(INGEST_ROUNDS):
            populate()
        return (time.perf_counter() - start) / INGEST_ROUNDS

    bulk_seconds = benchmark.pedantic(
        lambda: time_rounds(populate_bulk), rounds=1, iterations=1
    )
    loop_seconds = time_rounds(populate_loop)
    speedup = loop_seconds / bulk_seconds
    _write_section(
        "bulk_ingest",
        {
            "objects": INGEST_OBJECTS,
            "object_size": 1024,
            "per_record_seconds": round(loop_seconds, 5),
            "bulk_seconds": round(bulk_seconds, 5),
            "speedup": round(speedup, 2),
        },
    )
    print(f"\nbulk ingest: {bulk_seconds*1e3:.1f}ms "
          f"vs per-record {loop_seconds*1e3:.1f}ms ({speedup:.2f}x)")
    # Bulk must never lose at paper scale; the usual win is ~1.5x.
    # Smoke workloads are too small for a stable ratio.
    if not SMOKE:
        assert speedup > 1.0


def test_store_templating_vs_repopulation(benchmark):
    """Template clone against repopulating a store from scratch.

    This is the figure sweeps' dominant setup cost: the same
    (corpus, node, size) store rebuilt at every sweep point.
    """
    items = [
        (spec.keywords, spec.payload)
        for spec in generate_objects(0, count=INGEST_OBJECTS, size=1024)
    ]
    prototype = StorM()
    prototype.put_many(items)
    template = StoreTemplate.from_store(prototype)

    def time_rounds(build):
        start = time.perf_counter()
        for _ in range(INGEST_ROUNDS):
            build()
        return (time.perf_counter() - start) / INGEST_ROUNDS

    clone_seconds = benchmark.pedantic(
        lambda: time_rounds(template.instantiate), rounds=1, iterations=1
    )

    def repopulate():
        store = StorM()
        store.put_many(items)
        return store

    repopulate_seconds = time_rounds(repopulate)
    # A clone answers exactly like the populated store.
    keyword = items[0][0][0]
    clone = template.instantiate()
    assert [rid for rid, _ in clone.search_scan(keyword).matches] == [
        rid for rid, _ in prototype.search_scan(keyword).matches
    ]
    speedup = repopulate_seconds / clone_seconds
    _write_section(
        "templating",
        {
            "objects": INGEST_OBJECTS,
            "object_size": 1024,
            "repopulate_seconds": round(repopulate_seconds, 5),
            "clone_seconds": round(clone_seconds, 5),
            "speedup": round(speedup, 2),
        },
    )
    print(f"\ntemplating: clone {clone_seconds*1e3:.1f}ms "
          f"vs repopulate {repopulate_seconds*1e3:.1f}ms ({speedup:.2f}x)")
    # At paper scale the clone wins ~2.3x; a 100-object smoke store is
    # too small to amortise the clone's open-time page scan.
    if not SMOKE:
        assert speedup > 1.0


def test_simulator_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 5000
