"""Microbenchmarks of the substrate itself (real wall-clock time).

Unlike the figure benches (single-shot simulated experiments), these are
classic multi-round pytest-benchmark measurements of the library's hot
paths: StorM inserts and searches, B+-tree inserts, buffer hits, and
simulator event throughput.
"""

from repro.sim import Simulator
from repro.storm import StorM
from repro.storm.btree import BPlusTree
from repro.storm.buffer import BufferManager
from repro.storm.disk import InMemoryDisk
from repro.workloads import generate_objects


def test_storm_put_throughput(benchmark):
    objects = generate_objects(0, count=200, size=1024)

    def insert_batch():
        store = StorM()
        for spec in objects:
            store.put(spec.keywords, spec.payload)
        return store.count

    assert benchmark(insert_batch) == 200


def test_storm_search_scan(benchmark):
    store = StorM()
    for spec in generate_objects(0, count=1000, size=1024):
        store.put(spec.keywords, spec.payload)
    keyword = generate_objects(0, count=1, size=64)[0].keywords[0]

    result = benchmark(lambda: store.search_scan(keyword))
    assert result.objects_examined == 1000


def test_storm_indexed_search(benchmark):
    store = StorM()
    for spec in generate_objects(0, count=1000, size=1024):
        store.put(spec.keywords, spec.payload)
    keyword = generate_objects(0, count=1, size=64)[0].keywords[0]

    result = benchmark(lambda: store.search(keyword))
    assert result.match_count == 10


def test_btree_insert_throughput(benchmark):
    entries = [f"entry-{i:06d}".encode() for i in range(500)]

    def build_tree():
        tree = BPlusTree(BufferManager(InMemoryDisk(page_size=512), pool_size=64))
        for entry in entries:
            tree.insert(entry)
        return tree.entry_count

    assert benchmark(build_tree) == 500


def test_buffer_hit_path(benchmark):
    buffer = BufferManager(InMemoryDisk(page_size=4096), pool_size=8)
    page_id, _ = buffer.new_page()
    buffer.unpin(page_id)

    def hot_pin_unpin():
        for _ in range(1000):
            buffer.pin(page_id)
            buffer.unpin(page_id)

    benchmark(hot_pin_unpin)


def test_simulator_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 5000
