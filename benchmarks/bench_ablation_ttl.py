"""Ablation A3: agent TTL — coverage vs completion on a 16-node line."""

from benchmarks.support import PAPER, publish
from repro.eval.ablations import ablation_ttl


def test_ablation_ttl(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_ttl(PAPER, node_count=16, ttls=(2, 4, 8, 12, 16)),
        rounds=1,
        iterations=1,
    )
    publish("ablation_ttl", result)
    responders = result.y_values("responders")
    completion = result.y_values("completion (s)")
    assert responders == sorted(responders)
    assert responders[-1] == 15  # full coverage at ttl >= 15
    assert completion[0] < completion[-1]
