"""Microbenchmark: the wire-path encoding cache on a fan-out workload.

A flood protocol hands the *same* payload object to ``Host.send`` once
per neighbour.  With the :class:`~repro.util.serialization.WireEncoder`
cache the pickle+gzip work happens once per payload; with the cache
disabled (capacity 0) it happens once per recipient.  This bench times
both over an identical fan-out pattern, asserts the byte-for-byte wire
sizes match, and writes ``BENCH_wire.json`` with the measured speedup.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.support import RESULTS_DIR
from repro.util.compression import DEFAULT_CODEC
from repro.util.serialization import WireEncoder

#: distinct payloads (think: distinct queries crossing the network)
PAYLOADS = 200
#: recipients per payload (think: flood fan-out degree)
FAN_OUT = 32


def _payloads() -> list[dict]:
    return [
        {
            "query": f"keyword-{index}",
            "state": {"visited": list(range(index % 17)), "hops": index % 7},
            "body": bytes(range(256)) * 4,
        }
        for index in range(PAYLOADS)
    ]


def _encode_all(encoder: WireEncoder) -> tuple[list[int], float]:
    payloads = _payloads()
    start = time.perf_counter()
    sizes = [
        encoder.encode(payload).compressed_size
        for payload in payloads
        for _ in range(FAN_OUT)
    ]
    return sizes, time.perf_counter() - start


def test_wire_encoder_fan_out(benchmark):
    cached = WireEncoder(DEFAULT_CODEC)
    uncached = WireEncoder(DEFAULT_CODEC, capacity=0)

    cached_sizes, cached_seconds = benchmark.pedantic(
        lambda: _encode_all(cached), rounds=1, iterations=1
    )
    uncached_sizes, uncached_seconds = _encode_all(uncached)

    # The cache may only change speed, never bytes.
    assert cached_sizes == uncached_sizes
    assert cached.hits == PAYLOADS * (FAN_OUT - 1)
    assert cached.misses == PAYLOADS
    assert uncached.hits == 0

    speedup = uncached_seconds / cached_seconds
    payload = {
        "name": "wire",
        "payloads": PAYLOADS,
        "fan_out": FAN_OUT,
        "cached_seconds": round(cached_seconds, 4),
        "uncached_seconds": round(uncached_seconds, 4),
        "speedup": round(speedup, 2),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_wire.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwire fan-out: cached {cached_seconds:.4f}s "
          f"vs uncached {uncached_seconds:.4f}s ({speedup:.1f}x)")
    # Fan-out of 32 should be far more than 2x faster encoded-once.
    assert speedup > 2.0
