"""Microbenchmarks for the wire path: encoding cache + compact codec.

Four sections, all persisted into ``BENCH_wire.json``:

* ``fan_out`` — the :class:`~repro.util.serialization.WireEncoder`
  identity cache on a flood fan-out (one payload object, many
  recipients): encode once vs encode per recipient.
* ``control_plane`` — the compact struct-packed codec vs the legacy
  pickle+gzip path on a mixed stream of registered control messages
  (LIGLO handshakes, Gnutella descriptors, fetch/data tokens,
  state-only agent envelopes).  The compact path must be at least 2x
  faster per encode+decode round trip, and — the invariant everything
  else rests on — both codec modes must charge identical wire sizes.
* ``data_plane`` — the streaming data codec vs pickle+gzip on an
  answer-heavy stream (batched answers, fetch/data replies, sourced
  envelopes): the bytes that dominate a flood at scale.  Reported as
  bytes-encoded throughput; the stream path must be at least 2x.
* ``end_to_end_flood`` — wall-clock of a message-heavy 32-node flood
  with the codec registries populated vs emptied (the legacy wire path).

``REPRO_BENCH_SCALE=smoke`` shrinks the workloads for CI smoke runs; a
smoke run neither asserts speedups (scheduler noise dominates tiny
workloads) nor overwrites the persisted artifact.
"""

from __future__ import annotations

import json
import os
import random
import time

from benchmarks.support import RESULTS_DIR
from repro.net import datacodec
from repro.net.codec import (
    decode_message,
    encode_message,
    load_registrations,
    registered_specs,
    try_encode,
)
from repro.util.compression import DEFAULT_CODEC
from repro.util.serialization import WireEncoder, deserialize, serialize

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "") == "smoke"

#: distinct payloads (think: distinct queries crossing the network)
PAYLOADS = 20 if SMOKE else 200
#: recipients per payload (think: flood fan-out degree)
FAN_OUT = 8 if SMOKE else 32
#: control messages per codec timing round
CONTROL_ROUNDS = 20 if SMOKE else 400
#: data-plane messages per codec timing round
DATA_ROUNDS = 5 if SMOKE else 150

BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_wire.json")


def _write_section(section: str, payload: dict) -> None:
    """Read-modify-write one section of ``BENCH_wire.json``.

    Smoke runs never touch the artifact: the persisted numbers are the
    full-scale evidence cited by docs/PERFORMANCE.md.
    """
    if SMOKE:
        return
    document = {"name": "wire"}
    if os.path.exists(BENCH_PATH):
        try:
            with open(BENCH_PATH) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict) and isinstance(
                existing.get("fan_out"), dict
            ):
                document = existing
        except (OSError, json.JSONDecodeError):
            pass
    document[section] = payload
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Section 1: the fan-out encoding cache
# ---------------------------------------------------------------------------


def _payloads() -> list[dict]:
    return [
        {
            "query": f"keyword-{index}",
            "state": {"visited": list(range(index % 17)), "hops": index % 7},
            "body": bytes(range(256)) * 4,
        }
        for index in range(PAYLOADS)
    ]


def _encode_all(encoder: WireEncoder) -> tuple[list[int], float]:
    payloads = _payloads()
    start = time.perf_counter()
    sizes = [
        encoder.encode(payload).compressed_size
        for payload in payloads
        for _ in range(FAN_OUT)
    ]
    return sizes, time.perf_counter() - start


def test_wire_encoder_fan_out(benchmark):
    cached = WireEncoder(DEFAULT_CODEC)
    uncached = WireEncoder(DEFAULT_CODEC, capacity=0)

    cached_sizes, cached_seconds = benchmark.pedantic(
        lambda: _encode_all(cached), rounds=1, iterations=1
    )
    uncached_sizes, uncached_seconds = _encode_all(uncached)

    # The cache may only change speed, never bytes.
    assert cached_sizes == uncached_sizes
    assert cached.hits == PAYLOADS * (FAN_OUT - 1)
    assert cached.misses == PAYLOADS
    assert uncached.hits == 0

    speedup = uncached_seconds / cached_seconds
    _write_section(
        "fan_out",
        {
            "payloads": PAYLOADS,
            "fan_out": FAN_OUT,
            "cached_seconds": round(cached_seconds, 4),
            "uncached_seconds": round(uncached_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    print(f"\nwire fan-out: cached {cached_seconds:.4f}s "
          f"vs uncached {uncached_seconds:.4f}s ({speedup:.1f}x)")
    # Fan-out should be far more than 2x faster encoded-once.
    if not SMOKE:
        assert speedup > 2.0


# ---------------------------------------------------------------------------
# Section 2: compact codec vs pickle+gzip on control messages
# ---------------------------------------------------------------------------


def _control_messages() -> list:
    """A mixed control-plane stream: every registered sample, repeated."""
    load_registrations()
    samples = [spec.sample() for spec in registered_specs()]
    return [message for _ in range(CONTROL_ROUNDS) for message in samples]


def _time_compact(messages: list) -> float:
    start = time.perf_counter()
    for message in messages:
        decode_message(encode_message(message))
    return time.perf_counter() - start


def _time_pickle_gzip(messages: list) -> float:
    codec = DEFAULT_CODEC
    start = time.perf_counter()
    for message in messages:
        raw = serialize(message)
        codec.compress(raw)  # the legacy path sizes via gzip
        deserialize(raw)
    return time.perf_counter() - start


def test_control_plane_codec(benchmark):
    messages = _control_messages()

    compact_seconds = benchmark.pedantic(
        lambda: _time_compact(messages), rounds=1, iterations=1
    )
    pickle_seconds = _time_pickle_gzip(messages)

    # Both codec modes must charge identical wire sizes for every
    # registered message — the invariant that keeps simulated byte
    # counts independent of REPRO_WIRE_CODEC.
    samples = [spec.sample() for spec in registered_specs()]
    saved_mode = os.environ.pop("REPRO_WIRE_CODEC", None)
    try:
        compact_sizes = [
            WireEncoder(DEFAULT_CODEC, capacity=0).encode(m).compressed_size
            for m in samples
        ]
        os.environ["REPRO_WIRE_CODEC"] = "pickle"
        pickle_mode_sizes = [
            WireEncoder(DEFAULT_CODEC, capacity=0).encode(m).compressed_size
            for m in samples
        ]
    finally:
        if saved_mode is None:
            os.environ.pop("REPRO_WIRE_CODEC", None)
        else:
            os.environ["REPRO_WIRE_CODEC"] = saved_mode
    assert compact_sizes == pickle_mode_sizes
    assert compact_sizes == [len(try_encode(m)) for m in samples]

    speedup = pickle_seconds / compact_seconds
    per_message_us = compact_seconds / len(messages) * 1e6
    _write_section(
        "control_plane",
        {
            "messages": len(messages),
            "message_types": len(registered_specs()),
            "compact_seconds": round(compact_seconds, 4),
            "pickle_gzip_seconds": round(pickle_seconds, 4),
            "speedup": round(speedup, 2),
            "compact_us_per_message": round(per_message_us, 2),
        },
    )
    print(f"\ncontrol plane: compact {compact_seconds:.4f}s "
          f"vs pickle+gzip {pickle_seconds:.4f}s ({speedup:.1f}x, "
          f"{per_message_us:.1f}us/msg)")
    # The headline claim: >=2x on the control-plane round trip.
    if not SMOKE:
        assert speedup >= 2.0


# ---------------------------------------------------------------------------
# Section 3: streaming data codec vs pickle+gzip on answer-heavy traffic
# ---------------------------------------------------------------------------


def _data_messages() -> list:
    """An answer-dominated data-plane stream, deterministic via seed 7.

    The mix mirrors what a flood actually ships back: batched direct-mode
    answers with object payloads, fetch/data replies, and the occasional
    sourced agent envelope.
    """
    from repro.agents.envelope import AgentEnvelope
    from repro.agents.messages import AnswerItem, AnswerMessage, BatchedAnswers
    from repro.core.sharing import FetchReply
    from repro.core.shipping import DataReply
    from repro.ids import BPID, QueryId
    from repro.net.address import IPAddress
    from repro.storm.heapfile import RecordId

    datacodec.load_registrations()
    rng = random.Random(7)

    def answer(serial: int, items: int) -> AnswerMessage:
        origin = BPID("10.0.0.1", 7)
        return AnswerMessage(
            query_id=QueryId(origin, serial),
            responder=BPID("10.0.0.2", 9),
            responder_address=IPAddress("10.0.4.9"),
            hops=rng.randrange(1, 7),
            items=tuple(
                AnswerItem(
                    rid=RecordId(serial, index),
                    keywords=("music", f"kw-{index}"),
                    size=1024,
                    payload=rng.randbytes(1024),
                )
                for index in range(items)
            ),
        )

    sourced = datacodec.lookup(AgentEnvelope).sample().with_source(
        "class SearchAgent:\n"
        + "    def execute(self, node):\n"
        + "        return node.match(self.state['keyword'])\n" * 8
    )
    messages: list = []
    for round_index in range(DATA_ROUNDS):
        messages.append(
            BatchedAnswers([answer(round_index * 8 + i, 3) for i in range(4)])
        )
        messages.append(answer(round_index * 8 + 7, 2))
        messages.append(
            FetchReply(
                token=round_index,
                rid=RecordId(round_index, 0),
                payload=rng.randbytes(1024),
                found=True,
            )
        )
        messages.append(
            DataReply(
                token=round_index,
                objects=(
                    (("music",), rng.randbytes(1024)),
                    (("video",), rng.randbytes(1024)),
                ),
            )
        )
        messages.append(sourced)
    return messages


def _time_stream(messages: list) -> tuple[int, float]:
    from repro.agents.messages import BatchedAnswers

    start = time.perf_counter()
    total = 0
    for message in messages:
        frame = datacodec.encode_message(message)
        total += len(frame)
        decoded = datacodec.decode_message(frame)
        if isinstance(decoded, BatchedAnswers):
            decoded.answers  # charge the full round trip, not the lazy shell
    return total, time.perf_counter() - start


def _time_pickle_gzip_data(messages: list) -> tuple[int, float]:
    codec = DEFAULT_CODEC
    start = time.perf_counter()
    total = 0
    for message in messages:
        raw = serialize(message)
        total += len(codec.compress(raw))  # the legacy path sizes via gzip
        deserialize(raw)
    return total, time.perf_counter() - start


def test_data_plane_codec(benchmark):
    messages = _data_messages()

    stream_bytes, stream_seconds = benchmark.pedantic(
        lambda: _time_stream(messages), rounds=1, iterations=1
    )
    pickle_bytes, pickle_seconds = _time_pickle_gzip_data(messages)

    stream_mbps = stream_bytes / stream_seconds / 1e6
    pickle_mbps = pickle_bytes / pickle_seconds / 1e6
    throughput_ratio = stream_mbps / pickle_mbps
    speedup = pickle_seconds / stream_seconds
    _write_section(
        "data_plane",
        {
            "messages": len(messages),
            "stream_seconds": round(stream_seconds, 4),
            "pickle_gzip_seconds": round(pickle_seconds, 4),
            "stream_mb_per_s": round(stream_mbps, 1),
            "pickle_gzip_mb_per_s": round(pickle_mbps, 1),
            "throughput_ratio": round(throughput_ratio, 2),
            "speedup": round(speedup, 2),
        },
    )
    print(f"\ndata plane: stream {stream_seconds:.4f}s ({stream_mbps:.0f} MB/s) "
          f"vs pickle+gzip {pickle_seconds:.4f}s ({pickle_mbps:.0f} MB/s, "
          f"{throughput_ratio:.1f}x throughput)")
    # The headline claim: >=2x bytes-encoded throughput on the data plane.
    if not SMOKE:
        assert throughput_ratio >= 2.0


# ---------------------------------------------------------------------------
# Section 4: end-to-end — a flood-dominated deployment, codec vs legacy
# ---------------------------------------------------------------------------


def _flood_seconds(queries: int, nodes: int = 32) -> float:
    from repro.core.builder import build_network
    from repro.core.config import BestPeerConfig
    from repro.topology.builders import star

    deployment = build_network(
        nodes,
        config=BestPeerConfig(max_direct_peers=nodes, strategy="static"),
        topology=star(nodes),
    )
    # Every node matches, so each query floods out and 1KB direct-mode
    # answers stream back from all over the overlay — the answer-heavy
    # shape the data plane exists for.
    rng = random.Random(7)
    for index, node in enumerate(deployment.nodes):
        node.share(["needle", f"extra-{index}"], rng.randbytes(1024))
    start = time.perf_counter()
    for _ in range(queries):
        handle = deployment.base.issue_query("needle")
        deployment.sim.run()
        deployment.base.finish_query(handle)
    return time.perf_counter() - start


def test_end_to_end_flood(benchmark):
    """Wall-clock of a message-heavy flood, compact codec vs the legacy
    pickle+gzip wire path (simulated by emptying the codec registry).

    This is deliberately a small-store workload: figure runs at paper
    scale are dominated by loading 1000x1KB objects per node into StorM,
    which no wire codec can speed up (see docs/PERFORMANCE.md)."""
    from repro.net import codec as wire

    queries = 5 if SMOKE else 40
    rounds = 1 if SMOKE else 3
    load_registrations()
    datacodec.load_registrations()
    _flood_seconds(2)  # warm imports and caches

    # Interleave rounds and keep the best of each: at this scale (a
    # fraction of a second per round) scheduler noise would otherwise
    # dominate the comparison.
    saved_by_id, saved_by_class = dict(wire._BY_ID), dict(wire._BY_CLASS)
    saved_data_by_id = dict(datacodec._BY_ID)
    saved_data_by_class = dict(datacodec._BY_CLASS)
    compact_times: list[float] = []
    legacy_times: list[float] = []
    for _ in range(rounds):
        compact_times.append(
            benchmark.pedantic(lambda: _flood_seconds(queries), rounds=1, iterations=1)
            if not compact_times
            else _flood_seconds(queries)
        )
        try:
            wire._BY_ID.clear()
            wire._BY_CLASS.clear()
            datacodec._BY_ID.clear()
            datacodec._BY_CLASS.clear()
            legacy_times.append(_flood_seconds(queries))
        finally:
            wire._BY_ID.update(saved_by_id)
            wire._BY_CLASS.update(saved_by_class)
            datacodec._BY_ID.update(saved_data_by_id)
            datacodec._BY_CLASS.update(saved_data_by_class)
    compact_seconds = min(compact_times)
    legacy_seconds = min(legacy_times)

    gain = (legacy_seconds - compact_seconds) / legacy_seconds
    _write_section(
        "end_to_end_flood",
        {
            "queries": queries,
            "nodes": 32,
            "compact_seconds": round(compact_seconds, 4),
            "legacy_seconds": round(legacy_seconds, 4),
            "gain_percent": round(gain * 100, 1),
        },
    )
    print(f"\nend-to-end flood: compact {compact_seconds:.4f}s "
          f"vs legacy {legacy_seconds:.4f}s ({gain:+.1%})")
    # The gain is workload-dependent; just pin that compact never loses
    # meaningfully (>10% regression would mean the codec hurts).
    assert compact_seconds < legacy_seconds * 1.10
