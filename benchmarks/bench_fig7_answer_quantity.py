"""Figure 7: cumulative number of answers over time (32-node tree).

Paper shape: CS returns the first answers fastest, but BPS/BPR overtake
as answers accumulate; BPR is generally ahead of BPS.
"""

from benchmarks.support import publish, shared_figures_6_and_7


def test_figure_7_answer_quantity(benchmark):
    _, quantity = benchmark.pedantic(shared_figures_6_and_7, rounds=1, iterations=1)
    publish("figure_7", quantity)
    cs = quantity.series_named("CS")
    bps = quantity.series_named("BPS")
    bpr = quantity.series_named("BPR")
    # All schemes return every answer eventually.
    assert cs[-1][1] == bps[-1][1] == bpr[-1][1]
    # CS's first answer arrives earliest...
    assert cs[0][0] <= bps[0][0]
    # ...but its last answer arrives latest (the relay tail).
    assert cs[-1][0] > bps[-1][0]
    assert bpr[-1][0] <= bps[-1][0] * 1.02
