"""Replication figure: recall under churn, RF=1 vs RF=2 vs RF=2+cache.

The tentpole claim of the replication merge: owner-driven rf=2
placement turns churn survival into resilience — at 30% churn the
replicated schemes keep recall >= 0.95 on the exact workload where the
single-copy baseline visibly degrades, and the extra copies stay
affordable.  Shape assertions (full scale only):

* with no churn every scheme recalls 1.0 — replication must cost a
  healthy network nothing in answers;
* at 30% churn RF2 and RF2+cache each recall >= 0.95 while RF1 recalls
  strictly less than either;
* replica holders actually answered for dead owners (replica_answers
  > 0 under churn) and the Zipf-hot cache actually hit;
* bytes per query stay bounded: RF2 spends at most 1.5x the RF1 wire
  bill, and the cached scheme spends *less* than plain RF2;
* the fault plan really fired at the top rate.

``REPRO_BENCH_SCALE=smoke`` shrinks the sweep for CI and neither
asserts the comparison nor rewrites ``BENCH_replication.json``.
"""

import os

from benchmarks.support import publish, timed
from repro.eval.figures import FigureParams
from repro.eval.replication import figure_replication

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "smoke"

PARAMS = FigureParams(objects_per_node=0, queries=2 if SMOKE else 4, seed=0)
NODE_COUNT = 8 if SMOKE else 16
RATES = (0.0, 0.3) if SMOKE else (0.0, 0.3, 0.5)


def test_figure_replication(benchmark):
    result, elapsed = benchmark.pedantic(
        lambda: timed(
            lambda: figure_replication(
                PARAMS, node_count=NODE_COUNT, churn_rates=RATES
            )
        ),
        rounds=1,
        iterations=1,
    )
    trials = figure_replication.last_trials
    publish(
        "replication",
        result,
        # In smoke mode, print/refresh the text rendering only: the
        # published BENCH_replication.json always reflects the full sweep.
        elapsed=None if SMOKE else elapsed,
        extra={
            "node_count": NODE_COUNT,
            "churn_rates": list(RATES),
            "trials": trials,
        },
    )
    if SMOKE:
        return
    rf1 = dict(result.series_named("RF1"))
    rf2 = dict(result.series_named("RF2"))
    cached = dict(result.series_named("RF2+cache"))
    # A healthy network answers in full under every scheme.
    assert rf1[0.0] == 1.0
    assert rf2[0.0] == 1.0
    assert cached[0.0] == 1.0
    # The headline: at 30% churn the replicated schemes stay >= 0.95
    # on the workload where single-copy recall visibly degrades.
    assert rf2[0.3] >= 0.95
    assert cached[0.3] >= 0.95
    assert rf1[0.3] < rf2[0.3]
    assert rf1[0.3] < cached[0.3]
    point = {(t["scheme"], t["rate"]): t for t in trials}
    # Holders genuinely answered for dead owners...
    assert point[("RF2", 0.3)]["replication"]["replica_answers"] > 0
    # ...and the Zipf-hot repeats genuinely hit the result cache.
    assert point[("RF2+cache", 0.3)]["replication"]["cache_hits"] > 0
    for rate in RATES:
        # Bounded overhead: one extra copy never blows up the wire bill...
        assert (
            point[("RF2", rate)]["bytes_per_query"]
            <= 1.5 * point[("RF1", rate)]["bytes_per_query"]
        )
        # ...and the cache claws wire bytes back below plain RF2.
        assert (
            point[("RF2+cache", rate)]["bytes_per_query"]
            < point[("RF2", rate)]["bytes_per_query"]
        )
    # The fault plan really fired at the top churn rate.
    top = max(RATES)
    for scheme in ("RF1", "RF2", "RF2+cache"):
        assert point[(scheme, top)]["faults_applied"].get("node-crash", 0) >= 1
