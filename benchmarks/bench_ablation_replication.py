"""Ablation A6: replication factor vs response latency (future work)."""

from benchmarks.support import PAPER, publish
from repro.eval.ablations import ablation_replication


def test_ablation_replication(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_replication(PAPER, node_count=16, factors=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    publish("ablation_replication", result)
    first = result.y_values("first answer (s)")
    # More replicas -> some copy sits nearer the base -> faster first hit.
    assert first[-1] <= first[0]
