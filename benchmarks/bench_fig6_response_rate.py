"""Figure 6: rate at which answers are returned (32-node tree).

Paper shape: BPR reaches any responder count fastest; CS is competitive
for the first few nodes but returns the rest much more slowly because
answers travel back along the query path.
"""

from benchmarks.support import publish, shared_figures_6_and_7


def test_figure_6_response_rate(benchmark):
    rate, _ = benchmark.pedantic(shared_figures_6_and_7, rounds=1, iterations=1)
    publish("figure_6", rate)
    bpr = rate.y_values("BPR")
    bps = rate.y_values("BPS")
    cs = rate.y_values("CS")
    # BPR completes the full responder set no later than BPS, which in
    # turn beats CS by a wide margin at the tail.
    assert bpr[-1] <= bps[-1] * 1.02
    assert cs[-1] > bps[-1]
    # CS's early responses are fast: its first response beats BPS's.
    assert cs[0] <= bps[0]
