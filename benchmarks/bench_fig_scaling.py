"""Scaling figure: one flood simulation across all shards, 1k-10k nodes.

The headline artifact for the sharded kernel.  Strong scaling sweeps
shard counts {1, 2, 4} at fixed flood sizes up to 10k nodes; weak
scaling grows the flood with the shard count (2.5k nodes per shard, so
the 4-shard point is again a 10k-node flood).  Every distributed point
is checked byte-for-byte against its serial reference (the jittered
workload admits exactly one firing order — see
:mod:`repro.eval.scaling`).  Assertions (full scale only):

* every executor reproduces the serial observables exactly;
* the lockstep facade costs < 2x serial (it is serial plus barrier
  bookkeeping);
* the barrier's critical path projects > 1.8x speedup at 4 shards on
  the 10k-node flood — the measured wall-clock speedup is also
  recorded, alongside ``available_cores``, because a time-sliced
  single-core runner cannot exhibit it.

``REPRO_BENCH_SCALE=smoke`` shrinks the sweep for CI and neither
asserts the comparison nor rewrites ``BENCH_scaling.json``.
"""

import os

from benchmarks.support import merge_section, publish, timed
from repro.eval.figures import FigureParams
from repro.eval.scaling import available_cores, figure_scaling

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "smoke"

PARAMS = FigureParams(objects_per_node=0, queries=1 if SMOKE else 2, seed=0)
STRONG_NODES = (200,) if SMOKE else (1000, 2000, 10000)
SHARDS = (1, 2) if SMOKE else (1, 2, 4)
WEAK_BASE = None if SMOKE else 2500


def test_figure_scaling(benchmark):
    result, elapsed = benchmark.pedantic(
        lambda: timed(
            lambda: figure_scaling(
                PARAMS,
                node_counts=STRONG_NODES,
                shard_counts=SHARDS,
                weak_base=WEAK_BASE,
            )
        ),
        rounds=1,
        iterations=1,
    )
    trials = figure_scaling.last_trials
    publish("scaling", result, elapsed=None)
    if SMOKE:
        return
    merge_section(
        "scaling",
        "figure",
        {
            "series": {k: list(map(list, v)) for k, v in result.series.items()},
            "trials": trials,
            "available_cores": available_cores(),
            "wall_clock_seconds": round(elapsed, 2),
        },
    )
    # Determinism: every executor, every size, byte-for-byte.
    assert all(trial["identical"] for trial in trials)
    # The 10k-node flood point exists and projects past the bar at 4 shards.
    headline = [
        t
        for t in trials
        if t["executor"] == "distributed"
        and t["node_count"] >= 10000
        and t["shards"] == 4
    ]
    assert headline, "no 10k-node distributed point in the sweep"
    assert any(t["projected_speedup"] > 1.8 for t in headline)
    # Lockstep is serial plus bookkeeping, never a different complexity.
    for trial in trials:
        if trial["executor"] == "lockstep":
            assert trial["overhead_vs_serial"] < 2.0
