"""Routing-strategy comparison: recall vs traffic, clean and under churn.

Every registered :mod:`repro.core.routing` strategy runs the churn-figure
workload at rates 0 and 0.3 and reports mean recall next to messages and
bytes per query.  Shape assertions (full scale only):

* the paper strategies (maxcount/minhops) keep their recall — the
  pluggable framework costs the classic paths nothing;
* super-peer routing beats MaxCount on messages-per-query at recall no
  worse than MaxCount's, clean *and* under churn — the hint directory
  replaces the flood with a TTL-1 unicast to the holders;
* the hint directory really answered (hint hits observed), and the
  fault plan really fired at the churn point.

``REPRO_BENCH_SCALE=smoke`` shrinks the sweep for CI and neither asserts
the comparison nor rewrites ``BENCH_routing.json``.
"""

import os

from benchmarks.support import publish, timed
from repro.eval.figures import FigureParams
from repro.eval.routing import figure_routing

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "smoke"

PARAMS = FigureParams(objects_per_node=0, queries=2 if SMOKE else 4, seed=0)
NODE_COUNT = 10 if SMOKE else 16
RATES = (0.0, 0.3)


def test_figure_routing(benchmark):
    result, elapsed = benchmark.pedantic(
        lambda: timed(
            lambda: figure_routing(
                PARAMS, node_count=NODE_COUNT, churn_rates=RATES
            )
        ),
        rounds=1,
        iterations=1,
    )
    trials = figure_routing.last_trials
    publish(
        "routing",
        result,
        # In smoke mode, print/refresh the text rendering only: the
        # published BENCH_routing.json always reflects the full sweep.
        elapsed=None if SMOKE else elapsed,
        extra={
            "node_count": NODE_COUNT,
            "churn_rates": list(RATES),
            "trials": trials,
        },
    )
    if SMOKE:
        return
    point = {(t["strategy"], t["rate"]): t for t in trials}
    top = max(RATES)
    # The framework costs the classic paths nothing: the paper
    # strategies still answer in full on a healthy network.
    assert point[("maxcount", 0.0)]["mean_recall"] == 1.0
    assert point[("static", 0.0)]["mean_recall"] == 1.0
    for rate in RATES:
        sp, mc = point[("superpeer", rate)], point[("maxcount", rate)]
        # Recall no worse than MaxCount (hint miss falls back to flood)...
        assert sp["mean_recall"] >= mc["mean_recall"]
        # ...at strictly fewer messages and bytes per query.
        assert sp["messages_per_query"] < mc["messages_per_query"]
        assert sp["bytes_per_query"] < mc["bytes_per_query"]
        # The directory answered: routed queries came from hint hits.
        assert sp["hint_hits"] >= 1
    # The fault plan really fired at the churn point.
    for strategy in ("maxcount", "superpeer", "history", "costaware"):
        applied = point[(strategy, top)]["faults_applied"]
        assert applied.get("node-crash", 0) >= 1
        assert applied.get("liglo-down", 0) == 1
        assert applied.get("partition", 0) == 1
