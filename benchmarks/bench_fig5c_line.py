"""Figure 5(c): Line topology — completion time vs. network size.

Paper shape: same relative ordering as the tree — BPR best, and BPR
outperforms CS except at very small network sizes.
"""

from benchmarks.support import PAPER, publish
from repro.eval.figures import figure_5c


def test_figure_5c_line(benchmark):
    result = benchmark.pedantic(
        lambda: figure_5c(PAPER, sizes=(2, 4, 8, 16, 24, 32)),
        rounds=1,
        iterations=1,
    )
    publish("figure_5c", result)
    cs = result.y_values("CS")
    bps = result.y_values("BPS")
    bpr = result.y_values("BPR")
    assert cs[0] < bpr[0]  # n=2: CS fine when the chain is trivial
    assert cs[-1] > bpr[-1]  # n=32: the chain kills CS
    for left, right in zip(bpr, bps):
        assert left <= right * 1.02  # BPR is the best scheme
