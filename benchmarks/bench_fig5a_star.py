"""Figure 5(a): Star topology — completion time vs. network size.

Paper shape: SCS grows steeply (its client serializes conversations);
MCS is slightly ahead of BPS/BPR (no code-shipping overhead, nothing to
relay on a star); BPS and BPR coincide (a star leaves nothing to
reconfigure).
"""

from benchmarks.support import PAPER, publish, timed
from repro.eval.figures import figure_5a


def test_figure_5a_star(benchmark):
    result, elapsed = benchmark.pedantic(
        lambda: timed(lambda: figure_5a(PAPER, sizes=(1, 2, 4, 8, 16, 24, 32))),
        rounds=1,
        iterations=1,
    )
    publish("figure_5a", result, elapsed=elapsed)
    scs = result.y_values("SCS")
    mcs = result.y_values("CS")
    bps = result.y_values("BPS")
    bpr = result.y_values("BPR")
    # SCS degenerates with network size; the rest stay parallel.
    assert scs[-1] > 5 * mcs[-1]
    # MCS vs BPS/BPR: "the gain is not significant enough to be visible".
    for m, b in zip(mcs, bps):
        assert abs(m - b) <= 0.15 * max(m, b)
    # Nothing to reconfigure: BPS == BPR on every size.
    for left, right in zip(bps, bpr):
        assert abs(left - right) <= 0.05 * max(left, right, 1e-9)
