"""Figure 8(a): BestPeer vs Gnutella — completion per run of one query.

Paper shape: Gnutella is flat across runs (same fixed path every time);
BP's first run is its highest (it must route through every intermediate
peer) and subsequent runs drop sharply once reconfiguration connects the
base straight to the answer-bearing nodes; BP beats Gnutella in all runs.
"""

from benchmarks.support import PAPER, publish, timed
from repro.eval.figures import figure_8a


def test_figure_8a_gnutella_runs(benchmark):
    result, elapsed = benchmark.pedantic(
        lambda: timed(
            lambda: figure_8a(PAPER, node_count=32, max_peers=8, holder_count=3)
        ),
        rounds=1,
        iterations=1,
    )
    publish("figure_8a", result, elapsed=elapsed)
    bp = result.y_values("BP")
    gnutella = result.y_values("Gnutella")
    # Gnutella: same search path each run.
    assert max(gnutella) - min(gnutella) < 0.1 * max(gnutella)
    # BP: run 1 highest, then the reconfigured short-cuts kick in.
    assert bp[0] > bp[1]
    assert bp[1] >= bp[2] * 0.95
    # BP outperforms Gnutella in every run.
    for left, right in zip(bp, gnutella):
        assert left < right
