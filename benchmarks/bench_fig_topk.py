"""In-network top-k: bytes-on-wire vs answer quality across TTL x k.

The tentpole claim of the top-k merge: bounding the per-query answer
set at k <= 16 cuts bytes per query at least 2x against exhaustive
flooding *at equal top-k answer quality* (score-mass ratio vs the
exhaustive-scan oracle), clean and with dominated answers genuinely
dying in-network (dominated counts > 0, digests observed).  Shape
assertions (full scale only):

* at TTL 8 on a healthy network, k=4 and k=16 each halve (or better)
  bytes per query vs the exhaustive run;
* their quality at their own cutoff matches the exhaustive run's
  quality at the same cutoff — the pruning is free;
* dominance pruning actually fired (dominated answers recorded);
* under churn the top-k runs still spend no more bytes than exhaustive.

``REPRO_BENCH_SCALE=smoke`` shrinks the sweep for CI and neither
asserts the comparison nor rewrites ``BENCH_topk.json``.
"""

import os

from benchmarks.support import publish, timed
from repro.eval.figures import FigureParams
from repro.eval.topk import figure_topk

SMOKE = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() == "smoke"

PARAMS = FigureParams(objects_per_node=0, queries=2 if SMOKE else 4, seed=0)
NODE_COUNT = 8 if SMOKE else 16
KS = (4, None) if SMOKE else (4, 16, None)
TTLS = (4,) if SMOKE else (2, 4, 8)
RATES = (0.0,) if SMOKE else (0.0, 0.3)


def test_figure_topk(benchmark):
    result, elapsed = benchmark.pedantic(
        lambda: timed(
            lambda: figure_topk(
                PARAMS,
                node_count=NODE_COUNT,
                ks=KS,
                ttls=TTLS,
                churn_rates=RATES,
            )
        ),
        rounds=1,
        iterations=1,
    )
    trials = figure_topk.last_trials
    publish(
        "topk",
        result,
        # In smoke mode, print/refresh the text rendering only: the
        # published BENCH_topk.json always reflects the full sweep.
        elapsed=None if SMOKE else elapsed,
        extra={
            "node_count": NODE_COUNT,
            "ks": [k if k is not None else "exhaustive" for k in KS],
            "ttls": list(TTLS),
            "churn_rates": list(RATES),
            "trials": trials,
        },
    )
    if SMOKE:
        return
    point = {(t["k"], t["ttl"], t["rate"]): t for t in trials}
    exhaustive = point[(None, 8, 0.0)]
    for k in (4, 16):
        bounded = point[(k, 8, 0.0)]
        # The headline: bounding the answer set halves the wire bill...
        assert bounded["bytes_per_query"] * 2 <= exhaustive["bytes_per_query"]
        # ...at equal top-k answer quality (same cutoff, same oracle)...
        assert bounded["quality"][str(k)] >= exhaustive["quality"][str(k)]
        # ...because dominated answers really died in-network.
        assert bounded["dominated_per_query"] > 0
        assert bounded["digests_per_query"] > 0
    # Early termination never costs bytes, whatever the reach or churn.
    for ttl in TTLS:
        for rate in RATES:
            flood = point[(None, ttl, rate)]
            for k in (4, 16):
                assert (
                    point[(k, ttl, rate)]["bytes_per_query"]
                    <= flood["bytes_per_query"]
                )
    # The fault plan really fired at the churn point.
    applied = point[(4, 8, max(RATES))]["faults_applied"]
    assert applied.get("node-crash", 0) >= 1
