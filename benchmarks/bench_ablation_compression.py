"""Ablation A2: GZIP message compression on vs off.

Agent source and metadata compress well, so gzip trims wire time; the
effect is modest because object payloads are incompressible random
bytes.
"""

from benchmarks.support import PAPER, publish
from repro.eval.ablations import ablation_compression


def test_ablation_compression(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_compression(PAPER, node_count=15),
        rounds=1,
        iterations=1,
    )
    publish("ablation_compression", result)
    gzip_total = sum(result.y_values("gzip"))
    off_total = sum(result.y_values("off"))
    assert gzip_total <= off_total * 1.02
