"""Ablation A1: reconfiguration strategies head to head.

MaxCount and MinHops both collapse the completion time after the first
run; random replacement helps only by luck; static never improves.
"""

from benchmarks.support import PAPER, publish
from repro.eval.ablations import ablation_strategy


def test_ablation_strategy(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_strategy(PAPER, node_count=16, holder_count=3),
        rounds=1,
        iterations=1,
    )
    publish("ablation_strategy", result)
    maxcount = result.y_values("maxcount")
    minhops = result.y_values("minhops")
    static = result.y_values("static")
    assert maxcount[-1] < static[-1]
    assert minhops[-1] < static[-1]
    assert maxcount[-1] < maxcount[0]
