"""Ablation A7: code- vs data-shipping amortization (future work)."""

from benchmarks.support import PAPER, publish
from repro.eval.ablations import ablation_shipping
from repro.eval.analysis import crossover


def test_ablation_shipping(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_shipping(PAPER, node_count=4, query_count=10),
        rounds=1,
        iterations=1,
    )
    publish("ablation_shipping", result)
    code = result.y_values("always-code")
    data = result.y_values("always-data")
    adaptive = result.y_values("adaptive")
    # Code-shipping is cheaper for the first query...
    assert code[0] < data[0]
    # ...but the mirror amortizes: data wins cumulatively by the end.
    assert data[-1] < code[-1]
    # Code starts below and crosses above data partway through.
    crossing = crossover(result, "always-code", "always-data")
    assert crossing is not None and crossing > 1
    # Adaptive ends on the winning side of the trade.
    assert adaptive[-1] <= code[-1]
