"""Ablation A4: result mode 1 (direct answers) vs mode 2 (metadata)."""

from benchmarks.support import PAPER, publish
from repro.eval.ablations import ablation_result_mode


def test_ablation_result_mode(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_result_mode(PAPER, node_count=15),
        rounds=1,
        iterations=1,
    )
    publish("ablation_result_mode", result)
    direct = sum(result.y_values("direct"))
    metadata = sum(result.y_values("metadata"))
    # Metadata answers skip the 1KB payloads, so they arrive no later.
    assert metadata <= direct * 1.02
