"""Figure 5(b): Tree topology — completion time vs. tree level.

Paper shape: CS wins at level 1 (all peers directly connected; a plain
query beats shipping an agent) but degenerates as depth grows, because
results must be relayed along the return path; BPR <= BPS throughout.
"""

from benchmarks.support import PAPER, publish
from repro.eval.figures import figure_5b


def test_figure_5b_tree(benchmark):
    result = benchmark.pedantic(
        lambda: figure_5b(PAPER, levels=(1, 2, 3, 4, 5)),
        rounds=1,
        iterations=1,
    )
    publish("figure_5b", result)
    cs = result.y_values("CS")
    bps = result.y_values("BPS")
    bpr = result.y_values("BPR")
    assert cs[0] < bps[0]  # level 1: CS superior
    assert cs[-1] > bps[-1]  # level 5: CS degenerated
    assert all(c <= n for c, n in zip(cs, cs[1:]))  # CS monotone worse
    for left, right in zip(bpr, bps):
        assert left <= right * 1.02  # BPR never worse than BPS
